"""The differential oracle battery.

Each oracle takes one generated program plus a private RNG (used only
for workload arguments and edit sequences, so a re-run with the same
RNG state replays exactly) and returns ``None`` on success or a short
failure-detail string.  The five oracles cross-check every pair of
implementations the framework keeps:

``interp``
    Reference interpreter vs block-compiled fast path: identical
    results, final memory, fuel accounting (``executed``) and
    block/edge trace streams.
``cost``
    Full (:class:`~repro.core.costmodel.CostEvaluator`) vs incremental
    (:class:`~repro.core.costmodel.IncrementalCostEvaluator`) cost
    propagation over a random partition-edit walk -- **bitwise** equal
    costs and probability vectors, the documented contract.
``partition``
    Branch-and-bound (:func:`~repro.core.partition.find_optimal_partition`)
    vs exhaustive enumeration on loops with few violation candidates:
    equal optimal cost, and a legal (downward-closed, size-bounded)
    reported partition whose cost recomputes from scratch.
``spt``
    Sequential vs SPT-transformed execution (the transformed module must
    be semantically identical under the reference interpreter), plus the
    misspeculation replay of :mod:`repro.machine.spt_sim` against an
    independent reimplementation of the rollback rule.
``checkpoint``
    Uninterrupted vs snapshot-and-resumed simulation: the full SPT
    machine model (interpreter + timing tracer + trace collectors) is
    snapshotted at every Nth entry-frame boundary, each snapshot is
    restored into freshly built components, and every resumed run must
    reproduce the uninterrupted outcome **bitwise** -- result, memory,
    fuel, cycles, and per-loop statistics.
"""

from __future__ import annotations

import json
import random
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.checkpoint.state import (
    InstrIndex,
    restore_simulation,
    snapshot_simulation,
)
from repro.core.config import SptConfig
from repro.core.costgraph import build_cost_graph
from repro.core.costmodel import (
    CostEvaluator,
    IncrementalCostEvaluator,
    reexecution_probabilities,
)
from repro.core.partition import (
    PartitionResult,
    brute_force_partition,
    find_optimal_partition,
)
from repro.core.pipeline import Workload, compile_spt
from repro.core.transform import (
    TransformError,
    check_transformable,
    transform_loop,
)
from repro.core.vcdep import VCDepGraph
from repro.core.violation import find_violation_candidates
from repro.frontend import compile_minic
from repro.machine.timing import TimingModel
from repro.machine.spt_sim import (
    SptTraceCollector,
    _post_fork_writes,
    _replay_speculative,
    simulate_spt_loop,
)
from repro.obs.telemetry import NULL_TELEMETRY
from repro.perf.runner import build_simulation, finalize_simulation
from repro.profiling.compiled import CompiledMachine
from repro.profiling.interp import Machine, Tracer
from repro.ssa.construct import build_ssa
from repro.ssa.optimize import optimize

from .generator import ProgramSpec

__all__ = ["ORACLE_NAMES", "ORACLES", "run_oracle"]


def _source_of(spec) -> str:
    """Oracles accept a ProgramSpec or raw MiniC source (corpus replay)."""
    return spec if isinstance(spec, str) else spec.source()

#: Fuel for differential runs; generated programs are bounded far below.
FUEL = 4_000_000


class _TraceRecorder(Tracer):
    """Flat record of the block/edge/function event stream."""

    def __init__(self):
        self.events: List[Tuple] = []

    def on_enter_function(self, func, args) -> None:
        self.events.append(("enter", func.name, tuple(args)))

    def on_exit_function(self, func, result) -> None:
        self.events.append(("exit", func.name, result))

    def on_block(self, func, block, prev_label) -> None:
        self.events.append(("block", func.name, block.label, prev_label))

    def on_edge(self, func, src_label, dst_label) -> None:
        self.events.append(("edge", func.name, src_label, dst_label))


def _run(module, n: int, fast: bool):
    machine = (
        CompiledMachine(module, fuel=FUEL) if fast else Machine(module, fuel=FUEL)
    )
    recorder = _TraceRecorder()
    machine.add_tracer(recorder)
    result = machine.run("main", [n])
    return result, machine, recorder


def _workload_args(rng: random.Random) -> List[int]:
    return [rng.randint(0, 40), rng.randint(41, 400)]


# -- oracle 1: reference vs compiled interpreter ----------------------------


def oracle_interp(spec, rng: random.Random) -> Optional[str]:
    source = _source_of(spec)
    for n in _workload_args(rng):
        ref_module = compile_minic(source)
        fast_module = compile_minic(source)
        ref_result, ref_machine, ref_trace = _run(ref_module, n, fast=False)
        fast_result, fast_machine, fast_trace = _run(fast_module, n, fast=True)
        if ref_result != fast_result:
            return (
                f"n={n}: result mismatch "
                f"(reference {ref_result!r}, compiled {fast_result!r})"
            )
        if ref_machine.executed != fast_machine.executed:
            return (
                f"n={n}: fuel accounting mismatch "
                f"(reference executed {ref_machine.executed}, "
                f"compiled {fast_machine.executed})"
            )
        if ref_machine.memory != fast_machine.memory:
            return f"n={n}: final memory image differs"
        if ref_machine.symbols != fast_machine.symbols:
            return f"n={n}: global symbol layout differs"
        if ref_trace.events != fast_trace.events:
            for index, (a, b) in enumerate(
                zip(ref_trace.events, fast_trace.events)
            ):
                if a != b:
                    return (
                        f"n={n}: trace diverges at event {index}: "
                        f"reference {a!r} vs compiled {b!r}"
                    )
            return (
                f"n={n}: trace length differs "
                f"({len(ref_trace.events)} vs {len(fast_trace.events)})"
            )
    return None


# -- static analysis shared by the cost and partition oracles ---------------


def _analyzable_loops(source: str):
    """(module, func, loop, depgraph) for every transformable loop."""
    module = compile_minic(source)
    for name in sorted(module.functions):
        func = module.functions[name]
        build_ssa(func)
        optimize(func)
    for name in sorted(module.functions):
        func = module.functions[name]
        cfg = CFG.build(func)
        nest = LoopNest.build(func)
        for loop in nest.loops:
            try:
                check_transformable(func, loop, cfg)
            except TransformError:
                continue
            graph = build_dep_graph(module, func, loop)
            yield module, func, loop, graph


# -- oracle 2: full vs incremental cost propagation -------------------------


def oracle_cost(spec, rng: random.Random) -> Optional[str]:
    for _module, func, loop, graph in _analyzable_loops(_source_of(spec)):
        candidates = find_violation_candidates(graph)
        if not candidates:
            continue
        cg = build_cost_graph(graph, candidates)
        full = CostEvaluator(cg)
        incremental = IncrementalCostEvaluator(cg)
        keys = [vc.instr for vc in candidates]
        prefork: Set = set()
        for step in range(40):
            toggled = rng.choice(keys)
            if toggled in prefork:
                prefork.discard(toggled)
            else:
                prefork.add(toggled)
            reference = full.cost(prefork)
            fast = incremental.cost(prefork)
            if reference != fast:
                return (
                    f"{func.name}:{loop.header} step {step}: cost "
                    f"{reference!r} (full) != {fast!r} (incremental), "
                    f"|prefork|={len(prefork)}"
                )
            if step % 8 == 0:
                expected = reexecution_probabilities(cg, prefork)
                actual = incremental.probabilities(prefork)
                if expected != actual:
                    return (
                        f"{func.name}:{loop.header} step {step}: "
                        f"re-execution probability vectors differ"
                    )
    return None


# -- oracle 3: branch-and-bound vs brute force ------------------------------

#: Loops with more searchable VCs than this are left to the b&b-only
#: path (2^n brute force would dominate the campaign).
MAX_BRUTE_FORCE_VCS = 8


def oracle_partition(spec, rng: random.Random) -> Optional[str]:
    config = SptConfig()
    for _module, func, loop, graph in _analyzable_loops(_source_of(spec)):
        candidates = find_violation_candidates(graph)
        if not candidates:
            continue
        forced = {
            vc.instr
            for vc in candidates
            if graph.info[vc.instr].block == loop.header
        }
        searchable = [vc for vc in candidates if vc.instr not in forced]
        if len(searchable) > MAX_BRUTE_FORCE_VCS:
            continue
        where = f"{func.name}:{loop.header}"
        result = find_optimal_partition(graph, config)
        if result.skipped_too_many_vcs:
            continue
        exhaustive = brute_force_partition(graph, config)
        if exhaustive is None:
            continue
        if not (abs(result.cost - exhaustive.cost) <= 1e-9):
            return (
                f"{where}: branch-and-bound cost {result.cost!r} != "
                f"brute-force optimum {exhaustive.cost!r}"
            )
        # Legality of the reported partition.
        vcdep = VCDepGraph(graph, searchable)
        index_of = {id(vc.instr): i for i, vc in enumerate(vcdep.candidates)}
        selected = set()
        for vc in result.prefork_vcs:
            index = index_of.get(id(vc.instr))
            if index is None:
                return f"{where}: pre-fork VC not among searchable candidates"
            selected.add(index)
        if not vcdep.downward_closed(selected):
            return f"{where}: reported partition is not downward-closed"
        threshold = config.prefork_size_threshold(result.body_size)
        if selected and result.prefork_size > threshold + 1e-9:
            return (
                f"{where}: pre-fork size {result.prefork_size} exceeds "
                f"threshold {threshold}"
            )
        # The reported cost must recompute from scratch.
        cg = build_cost_graph(graph, candidates)
        keys = {vc.instr for vc in result.prefork_vcs} | forced
        recomputed = CostEvaluator(cg).cost(keys)
        if not (abs(recomputed - result.cost) <= 1e-12):
            return (
                f"{where}: reported cost {result.cost!r} does not match "
                f"recomputation {recomputed!r}"
            )
    return None


# -- oracle 4: sequential vs SPT-simulated execution ------------------------


def _independent_replay(main_trace, spec_trace) -> Tuple[float, int]:
    """Clean-room reimplementation of the misspeculation replay rule.

    A speculative op re-executes iff it observes a value the main thread
    changes after the fork (register or memory, and only if the final
    value actually differs from the at-fork value -- silent re-stores do
    not violate), or any of its inputs was produced by an op that itself
    re-executed.  Structured as a value-state map rather than
    taint/clean sets so a bug in one formulation cannot hide in both.
    """
    # What the main thread's post-fork region leaves behind:
    # location -> (value at fork time, final value).
    changed_regs: Dict[str, Tuple] = {}
    changed_addrs: Dict[int, Tuple] = {}
    for op in main_trace.ops:
        if op.pre_fork:
            continue
        if op.def_name is not None:
            first = changed_regs.get(op.def_name)
            if first is None:
                changed_regs[op.def_name] = (op.def_old, op.def_new)
            else:
                changed_regs[op.def_name] = (first[0], op.def_new)
        writes = dict(op.mem_writes or {})
        if op.store_addr is not None:
            writes[op.store_addr] = (op.store_old, op.store_new)
        for addr, (old, new) in writes.items():
            first = changed_addrs.get(addr)
            if first is None:
                changed_addrs[addr] = (old, new)
            else:
                changed_addrs[addr] = (first[0], new)

    stale_regs = {
        name for name, (old, new) in changed_regs.items() if old != new
    }
    stale_addrs = {
        addr for addr, (old, new) in changed_addrs.items() if old != new
    }

    # Replay: per-location state, "ok" once locally (re)defined cleanly.
    reg_state: Dict[str, str] = {}
    addr_state: Dict[int, str] = {}
    ticks = 0
    count = 0
    for op in spec_trace.ops:
        reads_regs = list(op.uses)
        reads_addrs = list(op.mem_reads or ())
        if op.load_addr is not None:
            reads_addrs.append(op.load_addr)
        bad = False
        for name in reads_regs:
            state = reg_state.get(name)
            if state == "bad" or (state is None and name in stale_regs):
                bad = True
        for addr in reads_addrs:
            state = addr_state.get(addr)
            if state == "bad" or (state is None and addr in stale_addrs):
                bad = True
        if bad:
            ticks += op.ticks
            count += 1
        verdict = "bad" if bad else "ok"
        if op.def_name is not None:
            reg_state[op.def_name] = verdict
        if op.store_addr is not None:
            addr_state[op.store_addr] = verdict
        for addr in op.mem_writes or ():
            addr_state[addr] = verdict
    return ticks, count


def _eager_config() -> SptConfig:
    return SptConfig(
        prefork_fraction=0.95,
        cost_fraction=0.9,
        min_body_size=2,
        selection_margin=2.0,
    )


def _stress_transform(module) -> List[Tuple[str, str, int]]:
    """Apply the SPT transform with a deliberately *empty* pre-fork
    region to every transformable loop that has violation candidates.

    The optimal partition usually hoists every violation source
    pre-fork, so speculation on well-partitioned loops rarely misses;
    this worst-case partition forces real misspeculation and rollback
    into the traces the oracle checks.  Returns (func_name, header,
    loop_id) for every transformed loop.
    """
    for name in sorted(module.functions):
        func = module.functions[name]
        build_ssa(func)
        optimize(func)
    transformed: List[Tuple[str, str, int]] = []
    for name in sorted(module.functions):
        func = module.functions[name]
        nest = LoopNest.build(func)
        taken: Set[str] = set()
        for loop in nest.loops:
            if loop.body & taken:
                continue  # no nested SPT loops, like the real pipeline
            cfg = CFG.build(func)
            try:
                check_transformable(func, loop, cfg)
            except TransformError:
                continue
            graph = build_dep_graph(module, func, loop)
            candidates = find_violation_candidates(graph)
            if not candidates:
                continue
            partition = PartitionResult(
                loop,
                candidates,
                prefork_vcs=[],
                prefork_stmts=set(),
                cost=0.0,
                prefork_size=0.0,
                body_size=loop.body_size(func),
                search_nodes=0,
            )
            try:
                info = transform_loop(module, func, loop, partition, graph)
            except TransformError:
                continue
            taken |= loop.body
            transformed.append((name, loop.header, info.loop_id))
    return transformed


def _collectors_for(module, loops) -> List[SptTraceCollector]:
    collectors = []
    for func_name, header, loop_id in loops:
        func = module.function(func_name)
        nest = LoopNest.build(func)
        loop = next((l for l in nest.loops if l.header == header), None)
        if loop is None:
            continue
        collectors.append(
            SptTraceCollector(
                func_name, header, loop.body, loop_id, TimingModel()
            )
        )
    return collectors


def oracle_spt(spec, rng: random.Random) -> Optional[str]:
    source = _source_of(spec)
    train, n = _workload_args(rng)

    seq_module = compile_minic(source)
    seq_machine = Machine(seq_module, fuel=FUEL)
    seq_result = seq_machine.run("main", [n])

    # Arm 1: the real pipeline with an eager selection config -- checks
    # the end-to-end transform plus traces of well-partitioned loops.
    spt_module = compile_minic(source)
    compiled = compile_spt(
        spt_module, _eager_config(), Workload(args=(train,))
    )
    selected = [
        (candidate.func_name, candidate.loop.header, info.loop_id)
        for candidate, info in zip(compiled.selected, compiled.spt_loops)
    ]
    detail = _check_spt_equivalence(
        seq_machine, seq_result, spt_module, selected, n, arm="pipeline"
    )
    if detail is not None:
        return detail

    # Arm 2: worst-case empty-prefork partitions, so misspeculation and
    # rollback actually happen in the traces being cross-checked.
    stress_module = compile_minic(source)
    stress_loops = _stress_transform(stress_module)
    return _check_spt_equivalence(
        seq_machine, seq_result, stress_module, stress_loops, n, arm="stress"
    )


def _check_spt_equivalence(
    seq_machine, seq_result, spt_module, loops, n: int, arm: str
) -> Optional[str]:
    collectors = _collectors_for(spt_module, loops)
    spt_machine = Machine(spt_module, fuel=FUEL)
    for collector in collectors:
        spt_machine.add_tracer(collector)
    spt_result = spt_machine.run("main", [n])

    if spt_result != seq_result:
        return (
            f"[{arm}] n={n}: transformed module result {spt_result!r} != "
            f"sequential result {seq_result!r}"
        )
    if spt_machine.memory != seq_machine.memory:
        return (
            f"[{arm}] n={n}: transformed module leaves a different "
            f"memory image"
        )

    for collector in collectors:
        where = f"[{arm}] {collector.func_name}:{collector.header}"
        # Differential: library replay vs independent reimplementation,
        # pairwise over the exact iteration pairing simulate_spt_loop uses.
        for iterations in collector.invocations:
            for index in range(0, len(iterations) - 1, 2):
                main_trace = iterations[index]
                spec_trace = iterations[index + 1]
                post_reg, post_mem = _post_fork_writes(main_trace)
                lib = _replay_speculative(spec_trace, post_reg, post_mem)
                ours = _independent_replay(main_trace, spec_trace)
                if lib != ours:
                    return (
                        f"{where}: misspeculation replay disagrees at "
                        f"round {index // 2}: library {lib!r} vs "
                        f"independent {ours!r}"
                    )
        stats = simulate_spt_loop(collector, telemetry=NULL_TELEMETRY)
        if stats.reexec_ops > stats.spec_ops:
            return (
                f"{where}: re-executed more ops ({stats.reexec_ops}) than "
                f"were speculated ({stats.spec_ops})"
            )
        if stats.reexec_cycles > stats.spec_cycles + 1e-9:
            return (
                f"{where}: re-executed more cycles than were speculated"
            )
        if stats.iterations and stats.spt_cycles <= 0:
            return f"{where}: {stats.iterations} iterations but no SPT cycles"
    return None


# -- oracle 5: uninterrupted vs snapshot-and-resumed simulation -------------

#: Upper bound on resume points checked per workload; snapshots beyond
#: it are thinned deterministically (every k-th) so pathological long
#: runs cannot stall the campaign.
MAX_RESUME_POINTS = 12


def _outcome_fields(outcome) -> Tuple:
    """A :class:`~repro.perf.runner.SimOutcome` as a comparable tuple
    (bitwise: no tolerance, floats must match exactly)."""
    return (
        outcome.result,
        outcome.seq_cycles,
        outcome.ipc,
        outcome.spt_cycles,
        tuple(
            (
                loop.func_name,
                loop.header,
                loop.speedup,
                loop.misspeculation_ratio,
                loop.iterations,
                loop.seq_cycles,
                loop.spt_cycles,
            )
            for loop in outcome.loops
        ),
    )


def oracle_checkpoint(spec, rng: random.Random) -> Optional[str]:
    """Snapshot/resume exactness over the full SPT machine model.

    Runs the compiled pipeline's simulation once with the checkpoint
    hook armed (cadence drawn from the oracle RNG), then resumes from
    every captured snapshot in freshly built components.  Each resumed
    run -- and every snapshot, which is JSON round-tripped exactly as
    the on-disk store would -- must reproduce the uninterrupted
    outcome bitwise."""
    source = _source_of(spec)
    train, n = _workload_args(rng)
    every = rng.randint(32, 256)

    module = compile_minic(source)
    compiled = compile_spt(module, _eager_config(), Workload(args=(train,)))
    index = InstrIndex(module)

    machine, tracer, collectors = build_simulation(module, compiled, fuel=FUEL)
    snapshots: List[Tuple[int, Dict]] = []
    hook_errors: List[str] = []
    last_saved = [-every]

    def hook(m, frame):
        if m.executed - last_saved[0] < every:
            return
        last_saved[0] = m.executed
        try:
            state = snapshot_simulation(m, frame, tracer, collectors, index)
            snapshots.append((m.executed, json.loads(json.dumps(state))))
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 - a snapshot contract break IS the failure
            hook_errors.append(f"at {m.executed}: {exc}")

    machine.checkpoint_hook = hook
    result = machine.run("main", [n])
    machine.checkpoint_hook = None
    if hook_errors:
        return (
            f"n={n}: snapshot failed at an entry-frame boundary "
            f"({hook_errors[0]})"
        )
    reference = (
        _outcome_fields(finalize_simulation(result, tracer, collectors)),
        machine.memory,
        machine.executed,
    )

    if len(snapshots) > MAX_RESUME_POINTS:
        step = -(-len(snapshots) // MAX_RESUME_POINTS)
        snapshots = snapshots[::step]
    for executed, state in snapshots:
        re_machine, re_tracer, re_collectors = build_simulation(
            module, compiled, fuel=FUEL
        )
        try:
            frame = restore_simulation(
                re_machine, state, re_tracer, re_collectors, index
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 - own snapshot must restore
            return (
                f"n={n}: snapshot taken at {executed} failed to "
                f"restore: {exc}"
            )
        resumed_result = re_machine.resume_frame(frame)
        resumed = (
            _outcome_fields(
                finalize_simulation(resumed_result, re_tracer, re_collectors)
            ),
            re_machine.memory,
            re_machine.executed,
        )
        if resumed != reference:
            what = "outcome"
            if resumed[2] != reference[2]:
                what = (
                    f"executed {resumed[2]} != {reference[2]} instructions"
                )
            elif resumed[1] != reference[1]:
                what = "final memory image"
            elif resumed[0] != reference[0]:
                what = (
                    f"simulated outcome {resumed[0]!r} != {reference[0]!r}"
                )
            return (
                f"n={n}: resume from snapshot at {executed} diverges "
                f"from the uninterrupted run ({what})"
            )
    return None


ORACLES = {
    "interp": oracle_interp,
    "cost": oracle_cost,
    "partition": oracle_partition,
    "spt": oracle_spt,
    "checkpoint": oracle_checkpoint,
}

ORACLE_NAMES = tuple(sorted(ORACLES))


def run_oracle(name: str, spec, rng: random.Random) -> Optional[str]:
    """Run one oracle; returns None on pass, a detail string on failure."""
    return ORACLES[name](spec, rng)
