"""Hypothesis strategies over the testkit generator.

Registers the seeded program generator as ordinary Hypothesis
strategies, so property tests draw whole MiniC programs (or compiled
modules) and get Hypothesis's example database and shrinking of the
*seed* for free, while the heavyweight structural shrinking stays in
:mod:`repro.testkit.shrink`.

Import is lazy-safe: this module imports ``hypothesis`` at module load,
so test files that need it should guard with
``pytest.importorskip("hypothesis")`` first if the environment may lack
it.
"""

from __future__ import annotations

from hypothesis import strategies as st

from .generator import GenConfig, ProgramSpec, generate_program, random_gen_config
from .seeding import derive_rng

__all__ = ["gen_configs", "minic_programs", "minic_sources", "program_seeds"]


def program_seeds() -> st.SearchStrategy[int]:
    """Seeds for :func:`derive_rng`; small ints shrink nicely."""
    return st.integers(min_value=0, max_value=2**32 - 1)


def gen_configs() -> "st.SearchStrategy[GenConfig]":
    """Generator configurations drawn through the shared convention."""
    return program_seeds().map(
        lambda seed: random_gen_config(derive_rng("hypothesis-config", seed))
    )


@st.composite
def minic_programs(draw, config: GenConfig = None) -> ProgramSpec:
    """Whole generated programs as :class:`ProgramSpec` values."""
    seed = draw(program_seeds())
    rng = derive_rng("hypothesis-program", seed)
    chosen = config or random_gen_config(rng)
    return generate_program(rng, chosen)


def minic_sources(config: GenConfig = None) -> "st.SearchStrategy[str]":
    """Generated programs rendered to MiniC source text."""
    return minic_programs(config=config).map(lambda spec: spec.source())
