"""One RNG-seeding convention for every randomized harness.

Fuzz campaigns, property tests and benchmarks all derive their
``random.Random`` instances here, so a failure report's ``seed=``
coordinates replay exactly no matter which harness found it, and no
harness ever touches the *global* ``random`` module state (which
plugins like ``pytest-randomly`` reseed between tests -- these helpers
are safe under ``pytest -p no:randomly`` and with the plugin active
alike, because every stream is a private instance).

Derivation is SHA-256 over the stringified parts, **not** Python's
``hash()``: ``hash(str)`` is randomized per process (PYTHONHASHSEED),
which would make "the same seed" mean a different program in every
run.  ``derive_seed(0, 17, "cost")`` is the same integer on every
machine, forever.
"""

from __future__ import annotations

import hashlib
import os
import random

__all__ = ["SEED_ENV", "base_seed", "derive_rng", "derive_seed"]

#: Environment variable overriding the campaign base seed (CI nightlies
#: export a date-derived value so every night explores fresh programs).
SEED_ENV = "REPRO_TEST_SEED"


def base_seed(default: int = 0) -> int:
    """The campaign base seed: ``$REPRO_TEST_SEED`` or ``default``."""
    raw = os.environ.get(SEED_ENV)
    if raw is None or not raw.strip():
        return default
    return int(raw, 0)


def derive_seed(*parts) -> int:
    """A stable 64-bit seed from arbitrary stringifiable parts."""
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(*parts) -> random.Random:
    """A private ``random.Random`` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(*parts))
