"""Seeded random MiniC program generator.

Programs are built as a small statement/expression tree
(:class:`ProgramSpec`) that renders to MiniC source, rather than as raw
text, so the delta-debugging shrinker (:mod:`repro.testkit.shrink`) can
remove statements and simplify expressions structurally and always
produce a program that still parses.

Every generated program is **total by construction**:

* ``for`` loops count a dedicated induction variable up to a constant
  (or ``n & mask``) bound, and generated assignments never target
  induction variables;
* ``while`` loops count a dedicated variable down, decrementing as the
  *first* body statement so ``continue`` cannot skip it;
* division and modulo render with a ``(... & 7) + 1`` divisor, shift
  amounts are masked to ``& 7``, and array indexes are masked to the
  (power-of-two) array size;
* every scalar assignment is masked to 16 bits, keeping values bounded.

The size knobs (:class:`GenConfig`) control loop nesting depth,
statements per block, scalar/array counts, irregular control flow
(``break``/``continue``), and function calls -- the program shapes the
paper's pass 1 has to evaluate (§3.2).
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Union

__all__ = [
    "ArrayDecl",
    "Assign",
    "Bin",
    "BreakIf",
    "CallExpr",
    "Cmp",
    "Expr",
    "ForStmt",
    "GenConfig",
    "Helper",
    "IfStmt",
    "LoadExpr",
    "Num",
    "ProgramSpec",
    "Ref",
    "Stmt",
    "StoreStmt",
    "WhileStmt",
    "generate_program",
    "random_gen_config",
]

#: Scalar assignments are masked to this, keeping values bounded.
VALUE_MASK = 65535

_ARITH_OPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%")
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


# -- configuration ----------------------------------------------------------


@dataclass
class GenConfig:
    """Size and shape knobs for one generated program."""

    #: Maximum loop nesting depth (1 = flat loops only).
    max_depth: int = 2
    #: Maximum statements per generated block.
    max_stmts: int = 4
    #: Maximum expression tree depth.
    max_expr_depth: int = 3
    n_scalars: int = 4
    n_arrays: int = 2
    #: Array length; must be a power of two (indexes mask to size-1).
    array_size: int = 64
    #: Outermost for-loop trip counts are drawn from [2, max_outer_trip].
    max_outer_trip: int = 24
    #: Nested loop trip counts are drawn from [2, max_inner_trip].
    max_inner_trip: int = 6
    #: Probability an array is declared ``aliased`` (pointer-reachable).
    p_aliased: float = 0.5
    allow_while: bool = True
    #: Irregular control flow: guarded ``break``/``continue``.
    allow_irregular: bool = True
    allow_calls: bool = True
    allow_div: bool = True

    def __post_init__(self):
        if self.array_size & (self.array_size - 1):
            raise ValueError("array_size must be a power of two")
        if self.max_depth < 1 or self.max_stmts < 1:
            raise ValueError("need max_depth >= 1 and max_stmts >= 1")


def random_gen_config(rng: random.Random) -> GenConfig:
    """Draw a GenConfig, varying the knobs the fuzz campaign sweeps."""
    return GenConfig(
        max_depth=rng.randint(1, 3),
        max_stmts=rng.randint(2, 5),
        max_expr_depth=rng.randint(2, 3),
        n_scalars=rng.randint(2, 5),
        n_arrays=rng.randint(1, 3),
        array_size=rng.choice((32, 64, 128)),
        max_outer_trip=rng.choice((8, 16, 24)),
        p_aliased=rng.choice((0.0, 0.5, 1.0)),
        allow_while=rng.random() < 0.7,
        allow_irregular=rng.random() < 0.7,
        allow_calls=rng.random() < 0.8,
    )


# -- expression nodes -------------------------------------------------------


class Expr:
    """Base expression node."""

    def render(self) -> str:
        raise NotImplementedError


class Num(Expr):
    def __init__(self, value: int):
        self.value = int(value)

    def render(self) -> str:
        return str(self.value)


class Ref(Expr):
    def __init__(self, name: str):
        self.name = name

    def render(self) -> str:
        return self.name


class LoadExpr(Expr):
    """``A[(index) & mask]``"""

    def __init__(self, array: str, index: Expr, mask: int):
        self.array = array
        self.index = index
        self.mask = mask

    def render(self) -> str:
        return f"{self.array}[({self.index.render()}) & {self.mask}]"


class Bin(Expr):
    """Arithmetic with runtime-error-proof rendering."""

    def __init__(self, op: str, a: Expr, b: Expr):
        self.op = op
        self.a = a
        self.b = b

    def render(self) -> str:
        a, b = self.a.render(), self.b.render()
        if self.op in ("/", "%"):
            return f"(({a}) {self.op} ((({b}) & 7) + 1))"
        if self.op in ("<<", ">>"):
            return f"(({a}) {self.op} (({b}) & 7))"
        return f"(({a}) {self.op} ({b}))"


class Cmp(Expr):
    def __init__(self, op: str, a: Expr, b: Expr):
        self.op = op
        self.a = a
        self.b = b

    def render(self) -> str:
        return f"(({self.a.render()}) {self.op} ({self.b.render()}))"


class CallExpr(Expr):
    def __init__(self, name: str, args: List[Expr]):
        self.name = name
        self.args = args

    def render(self) -> str:
        inner = ", ".join(a.render() for a in self.args)
        return f"{self.name}({inner})"


# -- statement nodes --------------------------------------------------------


class Stmt:
    """Base statement node; ``emit`` appends rendered lines."""

    def emit(self, lines: List[str], indent: str) -> None:
        raise NotImplementedError


class Assign(Stmt):
    """``name = (expr) & VALUE_MASK;`` -- targets scalars only."""

    def __init__(self, name: str, expr: Expr):
        self.name = name
        self.expr = expr

    def emit(self, lines: List[str], indent: str) -> None:
        lines.append(f"{indent}{self.name} = ({self.expr.render()}) & {VALUE_MASK};")


class StoreStmt(Stmt):
    def __init__(self, array: str, index: Expr, expr: Expr, mask: int):
        self.array = array
        self.index = index
        self.expr = expr
        self.mask = mask

    def emit(self, lines: List[str], indent: str) -> None:
        lines.append(
            f"{indent}{self.array}[({self.index.render()}) & {self.mask}]"
            f" = ({self.expr.render()}) & {VALUE_MASK};"
        )


class IfStmt(Stmt):
    def __init__(self, cond: Expr, then: List[Stmt], orelse: Optional[List[Stmt]] = None):
        self.cond = cond
        self.then = then
        self.orelse = orelse if orelse else []

    def emit(self, lines: List[str], indent: str) -> None:
        lines.append(f"{indent}if ({self.cond.render()}) {{")
        for stmt in self.then:
            stmt.emit(lines, indent + "    ")
        if self.orelse:
            lines.append(f"{indent}}} else {{")
            for stmt in self.orelse:
                stmt.emit(lines, indent + "    ")
        lines.append(f"{indent}}}")


class ForStmt(Stmt):
    """``for (int var = 0; var < bound; var++) { ... }``

    ``var`` is a dedicated induction variable no generated statement
    assigns, so termination is structural.
    """

    def __init__(self, var: str, bound: Expr, body: List[Stmt]):
        self.var = var
        self.bound = bound
        self.body = body

    def emit(self, lines: List[str], indent: str) -> None:
        lines.append(
            f"{indent}for (int {self.var} = 0; "
            f"{self.var} < {self.bound.render()}; {self.var}++) {{"
        )
        for stmt in self.body:
            stmt.emit(lines, indent + "    ")
        lines.append(f"{indent}}}")


class WhileStmt(Stmt):
    """Bounded countdown while-loop.

    The decrement is the first body statement, so a generated
    ``continue`` deeper in the body can never skip it.
    """

    def __init__(self, var: str, start: int, body: List[Stmt]):
        self.var = var
        self.start = int(start)
        self.body = body

    def emit(self, lines: List[str], indent: str) -> None:
        lines.append(f"{indent}{self.var} = {self.start};")
        lines.append(f"{indent}while ({self.var} > 0) {{")
        lines.append(f"{indent}    {self.var} = {self.var} - 1;")
        for stmt in self.body:
            stmt.emit(lines, indent + "    ")
        lines.append(f"{indent}}}")


class BreakIf(Stmt):
    """``if (cond) { break; }`` (or ``continue``) -- irregular control flow."""

    def __init__(self, cond: Expr, kind: str = "break"):
        if kind not in ("break", "continue"):
            raise ValueError(kind)
        self.cond = cond
        self.kind = kind

    def emit(self, lines: List[str], indent: str) -> None:
        lines.append(f"{indent}if ({self.cond.render()}) {{ {self.kind}; }}")


# -- program spec -----------------------------------------------------------


@dataclass
class ArrayDecl:
    name: str
    size: int
    aliased: bool = False

    def render(self) -> str:
        suffix = " aliased" if self.aliased else ""
        return f"global int {self.name}[{self.size}]{suffix};"


@dataclass
class Helper:
    """``int name(int x) { return (expr) & VALUE_MASK; }``"""

    name: str
    expr: Expr

    def render(self) -> str:
        return (
            f"int {self.name}(int x) {{\n"
            f"    return ({self.expr.render()}) & {VALUE_MASK};\n"
            f"}}"
        )


@dataclass
class ProgramSpec:
    """A renderable, shrinkable MiniC program (entry ``main(n)``)."""

    arrays: List[ArrayDecl] = field(default_factory=list)
    helpers: List[Helper] = field(default_factory=list)
    #: (name, initial value) for every scalar, declared at main() top.
    scalars: List[tuple] = field(default_factory=list)
    #: Countdown variables owned by WhileStmt nodes (declared as int = 0).
    while_vars: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    #: Array cells folded into the return checksum: (array name, index).
    checksum_cells: List[tuple] = field(default_factory=list)

    def clone(self) -> "ProgramSpec":
        return copy.deepcopy(self)

    def source(self) -> str:
        lines: List[str] = []
        for arr in self.arrays:
            lines.append(arr.render())
        if self.arrays:
            lines.append("")
        for helper in self.helpers:
            lines.append(helper.render())
            lines.append("")
        lines.append("int main(int n) {")
        for name, init in self.scalars:
            lines.append(f"    int {name} = {init};")
        for name in self.while_vars:
            lines.append(f"    int {name} = 0;")
        for stmt in self.body:
            stmt.emit(lines, "    ")
        terms = [name for name, _ in self.scalars]
        terms += [f"{arr}[{idx}]" for arr, idx in self.checksum_cells]
        if not terms:
            terms = ["0"]
        lines.append(f"    return ({' + '.join(terms)}) & 1048575;")
        lines.append("}")
        return "\n".join(lines) + "\n"


# -- the generator ----------------------------------------------------------


class _Generator:
    def __init__(self, rng: random.Random, config: GenConfig):
        self.rng = rng
        self.config = config
        self.spec = ProgramSpec()
        self._loop_counter = 0
        self._while_counter = 0

    # -- naming ------------------------------------------------------------

    def _fresh_loop_var(self) -> str:
        name = f"i{self._loop_counter}"
        self._loop_counter += 1
        return name

    def _fresh_while_var(self) -> str:
        name = f"w{self._while_counter}"
        self._while_counter += 1
        self.spec.while_vars.append(name)
        return name

    # -- expressions -------------------------------------------------------

    def _scalar_names(self) -> List[str]:
        return [name for name, _ in self.spec.scalars]

    def gen_expr(self, depth: int, loop_vars: List[str]) -> Expr:
        rng = self.rng
        leaves = ["num", "ref"]
        inner = []
        if self.spec.arrays:
            inner.append("load")
        inner.append("bin")
        if self.config.allow_calls and self.spec.helpers:
            inner.append("call")
        kind = rng.choice(leaves if depth <= 0 else leaves + inner * 2)
        if kind == "num":
            return Num(rng.randint(0, 255))
        if kind == "ref":
            pool = self._scalar_names() + loop_vars + ["n"]
            return Ref(rng.choice(pool))
        if kind == "load":
            arr = rng.choice(self.spec.arrays)
            return LoadExpr(
                arr.name, self.gen_expr(depth - 1, loop_vars), arr.size - 1
            )
        if kind == "call":
            helper = rng.choice(self.spec.helpers)
            return CallExpr(helper.name, [self.gen_expr(depth - 1, loop_vars)])
        ops = _ARITH_OPS if self.config.allow_div else _ARITH_OPS[:-2]
        return Bin(
            rng.choice(ops),
            self.gen_expr(depth - 1, loop_vars),
            self.gen_expr(depth - 1, loop_vars),
        )

    def gen_cond(self, loop_vars: List[str]) -> Expr:
        return Cmp(
            self.rng.choice(_CMP_OPS),
            self.gen_expr(1, loop_vars),
            self.gen_expr(1, loop_vars),
        )

    # -- statements --------------------------------------------------------

    def gen_stmt(self, depth: int, loop_depth: int, loop_vars: List[str]) -> Stmt:
        rng = self.rng
        choices = ["assign", "assign", "store"]
        if depth > 0:
            choices += ["if", "for", "for"]
            if self.config.allow_while:
                choices.append("while")
        if loop_depth > 0 and self.config.allow_irregular:
            choices.append("irregular")
        kind = rng.choice(choices)

        if kind == "assign":
            name = rng.choice(self._scalar_names())
            expr = self.gen_expr(self.config.max_expr_depth, loop_vars)
            if rng.random() < 0.6:
                # Read-modify-write: the shape that carries values across
                # iterations and creates violation candidates.
                expr = Bin(rng.choice(("+", "-", "^", "&")), Ref(name), expr)
            return Assign(name, expr)
        if kind == "store":
            arr = rng.choice(self.spec.arrays)
            return StoreStmt(
                arr.name,
                self.gen_expr(1, loop_vars),
                self.gen_expr(self.config.max_expr_depth - 1, loop_vars),
                arr.size - 1,
            )
        if kind == "if":
            then = self.gen_block(depth - 1, loop_depth, loop_vars, force_loop=False)
            orelse = (
                self.gen_block(depth - 1, loop_depth, loop_vars, force_loop=False)
                if rng.random() < 0.4
                else None
            )
            return IfStmt(self.gen_cond(loop_vars), then, orelse)
        if kind == "for":
            return self.gen_for(depth, loop_depth, loop_vars)
        if kind == "while":
            var = self._fresh_while_var()
            body = self.gen_block(
                depth - 1, loop_depth + 1, loop_vars, force_loop=False
            )
            return WhileStmt(var, rng.randint(2, self.config.max_inner_trip + 2), body)
        # irregular
        return BreakIf(
            self.gen_cond(loop_vars),
            self.rng.choice(("break", "continue")),
        )

    def gen_for(self, depth: int, loop_depth: int, loop_vars: List[str]) -> ForStmt:
        rng = self.rng
        var = self._fresh_loop_var()
        if loop_depth == 0:
            if rng.random() < 0.5:
                bound: Expr = Num(rng.randint(2, self.config.max_outer_trip))
            else:
                bound = Bin("&", Ref("n"), Num(self.config.max_outer_trip - 1 | 7))
        else:
            bound = Num(rng.randint(2, self.config.max_inner_trip))
        body = self.gen_block(
            depth - 1, loop_depth + 1, loop_vars + [var], force_loop=False
        )
        # Guarantee a cross-iteration carrier so the loop exercises the
        # violation-candidate machinery more often than not.
        if rng.random() < 0.8:
            name = rng.choice(self._scalar_names())
            body.insert(
                rng.randint(0, len(body)),
                Assign(name, Bin("+", Ref(name), self.gen_expr(1, loop_vars + [var]))),
            )
        return ForStmt(var, bound, body)

    def gen_block(
        self, depth: int, loop_depth: int, loop_vars: List[str], force_loop: bool
    ) -> List[Stmt]:
        count = self.rng.randint(1, self.config.max_stmts)
        stmts = [
            self.gen_stmt(depth, loop_depth, loop_vars) for _ in range(count)
        ]
        if force_loop and not any(isinstance(s, ForStmt) for s in stmts):
            stmts.append(self.gen_for(depth, loop_depth, loop_vars))
        return stmts

    # -- whole programs ----------------------------------------------------

    def generate(self) -> ProgramSpec:
        rng, config, spec = self.rng, self.config, self.spec
        for index in range(config.n_arrays):
            spec.arrays.append(
                ArrayDecl(
                    name=chr(ord("A") + index),
                    size=config.array_size,
                    aliased=rng.random() < config.p_aliased,
                )
            )
        for index in range(config.n_scalars):
            spec.scalars.append((f"s{index}", (index * 7 + 3) & 255))
        if config.allow_calls:
            for index in range(rng.randint(1, 2)):
                body: Expr = Bin(
                    rng.choice(("+", "^", "*")),
                    Bin("*", Ref("x"), Num(rng.randint(2, 13))),
                    Num(rng.randint(1, 63)),
                )
                if spec.arrays and rng.random() < 0.5:
                    arr = rng.choice(spec.arrays)
                    body = Bin("+", body, LoadExpr(arr.name, Ref("x"), arr.size - 1))
                spec.helpers.append(Helper(f"helper{index}", body))

        # Deterministic array initialization, itself ordinary loops the
        # shrinker may discard.
        for arr in spec.arrays:
            var = self._fresh_loop_var()
            spec.body.append(
                ForStmt(
                    var,
                    Num(arr.size),
                    [
                        StoreStmt(
                            arr.name,
                            Ref(var),
                            Bin("*", Ref(var), Num(rng.randint(3, 37))),
                            arr.size - 1,
                        )
                    ],
                )
            )

        spec.body.extend(
            self.gen_block(config.max_depth, 0, [], force_loop=True)
        )
        for arr in spec.arrays[:2]:
            spec.checksum_cells.append((arr.name, rng.randint(0, arr.size - 1)))
        return spec


def generate_program(
    rng: Union[int, random.Random], config: Optional[GenConfig] = None
) -> ProgramSpec:
    """Generate one program; ``rng`` is a seed or a ``random.Random``."""
    if not isinstance(rng, random.Random):
        rng = random.Random(rng)
    return _Generator(rng, config or GenConfig()).generate()
