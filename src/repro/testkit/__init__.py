"""Differential-oracle fuzzing testkit.

A seeded MiniC program generator (:mod:`~repro.testkit.generator`), a
battery of five differential oracles cross-checking the framework's
paired implementations (:mod:`~repro.testkit.oracles`), a structural
delta-debugging shrinker (:mod:`~repro.testkit.shrink`), the campaign
driver behind ``repro fuzz`` (:mod:`~repro.testkit.runner`), the
regression corpus format (:mod:`~repro.testkit.corpus`), and snapshot
anchors that let reproducers replay from the checkpoint nearest their
failure (:mod:`~repro.testkit.anchor`).  All randomness flows through
:mod:`~repro.testkit.seeding`.

Hypothesis strategies live in :mod:`repro.testkit.strategies`, which is
not imported here so the core testkit works without hypothesis.
"""

from repro.testkit.anchor import capture_anchor, replay_anchor
from repro.testkit.corpus import (
    CorpusEntry,
    load_corpus,
    replay_entry,
    save_reproducer,
)
from repro.testkit.generator import (
    GenConfig,
    ProgramSpec,
    generate_program,
    random_gen_config,
)
from repro.testkit.oracles import ORACLE_NAMES, run_oracle
from repro.testkit.runner import (
    FuzzFailure,
    FuzzReport,
    oracle_predicate,
    run_campaign,
)
from repro.testkit.seeding import SEED_ENV, base_seed, derive_rng, derive_seed
from repro.testkit.shrink import shrink_program

__all__ = [
    "CorpusEntry",
    "FuzzFailure",
    "FuzzReport",
    "GenConfig",
    "ORACLE_NAMES",
    "ProgramSpec",
    "SEED_ENV",
    "base_seed",
    "capture_anchor",
    "derive_rng",
    "derive_seed",
    "generate_program",
    "load_corpus",
    "oracle_predicate",
    "random_gen_config",
    "replay_anchor",
    "replay_entry",
    "run_campaign",
    "run_oracle",
    "save_reproducer",
    "shrink_program",
]
