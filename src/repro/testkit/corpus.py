"""Regression corpus: minimized reproducers saved as MiniC files.

Every failure the fuzzer finds is written as an ordinary ``.c`` file
whose leading comment block records its replay coordinates::

    // repro-fuzz reproducer
    // oracle: cost
    // seed: 17
    // iteration: 342
    // detail: main:L3 step 4: cost 12.5 (full) != 13.5 (incremental)

Replaying an entry means running its oracle over the file's source with
the RNG re-derived from the recorded coordinates -- byte-identical to
the campaign run that found it.  The checked-in corpus under
``tests/testkit/corpus/`` is replayed as ordinary pytest cases, so a
once-found bug can never quietly return.

When the campaign captured a snapshot anchor for the failure
(:mod:`repro.testkit.anchor`), it is saved as a ``<name>.snapshot.json``
sidecar next to the ``.c`` file, and replay additionally resumes the
reproducer *from the snapshot*, cross-checking against a cold run
before the oracle re-runs.  Sidecars are advisory: a missing, corrupt,
or no-longer-applicable one silently degrades to a cold replay.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Optional

from .oracles import ORACLE_NAMES, run_oracle
from .seeding import derive_rng

__all__ = ["CorpusEntry", "load_corpus", "replay_entry", "save_reproducer"]

_MAGIC = "// repro-fuzz reproducer"


def _snapshot_sidecar(path: str) -> str:
    """``foo.c`` -> ``foo.snapshot.json``."""
    return os.path.splitext(path)[0] + ".snapshot.json"


@dataclass
class CorpusEntry:
    """One reproducer: MiniC source plus its replay coordinates."""

    path: str
    oracle: str
    seed: int
    iteration: int
    source: str
    detail: str = ""
    #: Parsed ``<name>.snapshot.json`` sidecar, when one exists and is
    #: well-formed; replay resumes from it before running the oracle.
    snapshot: Optional[dict] = None

    @property
    def name(self) -> str:
        return os.path.splitext(os.path.basename(self.path))[0]


def save_reproducer(directory: str, failure) -> str:
    """Write a :class:`~repro.testkit.runner.FuzzFailure` as a corpus
    file; returns the path.  The *minimized* program is saved when the
    shrinker produced one."""
    os.makedirs(directory, exist_ok=True)
    spec = failure.reproducer
    detail = failure.shrunk_detail or failure.detail
    path = os.path.join(
        directory,
        f"{failure.oracle}-seed{failure.seed}-iter{failure.iteration}.c",
    )
    header = [
        _MAGIC,
        f"// oracle: {failure.oracle}",
        f"// seed: {failure.seed}",
        f"// iteration: {failure.iteration}",
        f"// detail: {' '.join(detail.split())}",
        "",
    ]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(header))
        handle.write(spec.source())
    snapshot = getattr(failure, "snapshot", None)
    if snapshot is not None:
        with open(_snapshot_sidecar(path), "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return path


def _parse_entry(path: str, text: str) -> Optional[CorpusEntry]:
    lines = text.splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        return None
    fields = {}
    body_start = 1
    for index, line in enumerate(lines[1:], start=1):
        stripped = line.strip()
        if stripped.startswith("//") and ":" in stripped:
            key, _, value = stripped[2:].partition(":")
            fields[key.strip()] = value.strip()
            body_start = index + 1
        else:
            break
    oracle = fields.get("oracle", "")
    if oracle not in ORACLE_NAMES:
        raise ValueError(f"{path}: unknown or missing oracle {oracle!r}")
    return CorpusEntry(
        path=path,
        oracle=oracle,
        seed=int(fields.get("seed", "0"), 0),
        iteration=int(fields.get("iteration", "0"), 0),
        source="\n".join(lines[body_start:]).lstrip("\n").rstrip("\n") + "\n",
        detail=fields.get("detail", ""),
    )


def load_corpus(directory: str) -> List[CorpusEntry]:
    """All reproducers in ``directory``, sorted by file name.

    Files without the reproducer magic line are ignored (the directory
    may hold a README); malformed metadata raises."""
    entries: List[CorpusEntry] = []
    if not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".c"):
            continue
        path = os.path.join(directory, name)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        entry = _parse_entry(path, text)
        if entry is not None:
            entry.snapshot = _load_sidecar(path)
            entries.append(entry)
    return entries


def _load_sidecar(path: str) -> Optional[dict]:
    """Best-effort parse of the snapshot sidecar; anything unreadable
    or foreign is treated as absent (anchors are advisory)."""
    from .anchor import SNAPSHOT_SCHEMA

    try:
        with open(_snapshot_sidecar(path), "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:  # noqa: BLE001 - missing/corrupt sidecar => no anchor
        return None
    if (
        not isinstance(document, dict)
        or document.get("schema") != SNAPSHOT_SCHEMA
    ):
        return None
    return document


def replay_entry(entry: CorpusEntry) -> Optional[str]:
    """Re-run the entry's oracle on its source; None means it passes
    (i.e. the bug it once reproduced stays fixed).

    Entries with a snapshot sidecar first replay *from the snapshot*:
    the recorded state is restored and resumed, and divergence from a
    cold run is itself a failure.  A sidecar that no longer applies
    (edited source, stale schema) is skipped, never fatal."""
    if entry.snapshot is not None:
        from repro.checkpoint.state import CheckpointError

        from .anchor import replay_anchor

        try:
            detail = replay_anchor(entry.source, entry.snapshot)
        except CheckpointError:
            detail = None  # anchor no longer applies: cold replay only
        if detail is not None:
            return f"snapshot replay: {detail}"
    rng = derive_rng(entry.seed, entry.iteration, entry.oracle)
    return run_oracle(entry.oracle, entry.source, rng)
