"""Snapshot anchors: the checkpoint nearest a fuzz failure.

When a campaign finds a failure, the runner re-executes the minimized
reproducer under the reference interpreter with the checkpoint hook
armed and keeps the **last** snapshot taken before the program ends --
the machine state nearest the failing behaviour.  The corpus writes it
as a ``<name>.snapshot.json`` sidecar next to the ``.c`` reproducer
(schema ``repro-fuzz-snapshot/1``), and replay then *starts from the
snapshot*: the recorded state is restored into a fresh machine, resumed
to completion, and cross-checked against a cold run before the original
oracle re-runs.  A reproducer therefore keeps re-proving two things at
once -- that its bug stays fixed, and that snapshot/resume over its
exact execution stays bitwise exact.

Anchors are advisory by design.  A sidecar that no longer applies
(edited source, schema bump, corrupt JSON) raises
:class:`~repro.checkpoint.state.CheckpointError`, which replay treats
as "skip the anchor, run cold" -- never as a corpus failure.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional

from repro.checkpoint.state import CheckpointError
from repro.frontend import compile_minic
from repro.profiling.interp import Machine

__all__ = [
    "ANCHOR_EVERY",
    "SNAPSHOT_SCHEMA",
    "anchor_workload",
    "capture_anchor",
    "replay_anchor",
]

SNAPSHOT_FORMAT_VERSION = 1
SNAPSHOT_SCHEMA = f"repro-fuzz-snapshot/{SNAPSHOT_FORMAT_VERSION}"

#: Snapshot cadence (in executed instructions) for anchor capture.
ANCHOR_EVERY = 64

#: Fuel mirror of :data:`repro.testkit.oracles.FUEL` (not imported to
#: keep this module free of the oracle battery's heavy imports).
FUEL = 4_000_000


def anchor_workload(rng: random.Random) -> int:
    """The workload argument an anchor is captured under: the *last*
    value of the oracle's workload draw, re-derived from the same RNG
    coordinates the failing oracle used."""
    from .oracles import _workload_args

    return _workload_args(rng)[-1]


def _json_round_trip(value):
    import json

    return json.loads(json.dumps(value))


def capture_anchor(
    source: str, n: int, checkpoint_every: int = ANCHOR_EVERY
) -> Optional[Dict]:
    """Run ``main(n)`` under the reference interpreter, checkpointing
    every ``checkpoint_every`` instructions, and return the snapshot
    nearest the end of the run as a self-describing document.

    Returns None when the program finishes before the first boundary
    (nothing to anchor).  The document embeds the expected final result
    and instruction count so replay can verify resume exactness."""
    module = compile_minic(source)
    machine = Machine(module, fuel=FUEL)
    snapshots: List[Dict] = []
    last_saved = [-checkpoint_every]

    def hook(m, frame):
        if m.executed - last_saved[0] < checkpoint_every:
            return
        last_saved[0] = m.executed
        # Round-trip through JSON immediately: the sidecar stores JSON,
        # and the anchor must already behave like what replay will read.
        snapshots.append(_json_round_trip(m.snapshot_state(frame)))

    machine.checkpoint_hook = hook
    result = machine.run("main", [n])
    if not snapshots:
        return None
    state = snapshots[-1]
    return {
        "schema": SNAPSHOT_SCHEMA,
        "format": SNAPSHOT_FORMAT_VERSION,
        "source_sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
        "n": n,
        "checkpoint_every": checkpoint_every,
        "executed": state["executed"],
        "expect": {
            "result": _json_round_trip(result),
            "executed_total": machine.executed,
        },
        "state": state,
    }


def replay_anchor(source: str, anchor: Dict) -> Optional[str]:
    """Resume ``source`` from an anchor document and cross-check the
    completed run against a cold one.

    Returns None when the resumed run is bitwise identical (result,
    final memory, instruction count) and a failure-detail string on
    divergence.  Raises :class:`CheckpointError` when the anchor does
    not *apply* -- wrong schema, or state that no longer matches the
    module -- which callers treat as "run cold", not as a failure."""
    if (
        not isinstance(anchor, dict)
        or anchor.get("schema") != SNAPSHOT_SCHEMA
        or not isinstance(anchor.get("state"), dict)
    ):
        raise CheckpointError("not a repro-fuzz-snapshot/1 document")
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    if anchor.get("source_sha256") not in (None, digest):
        raise CheckpointError(
            "snapshot was captured over different source (edited "
            "reproducer?)"
        )
    n = anchor["n"]

    cold_machine = Machine(compile_minic(source), fuel=FUEL)
    cold_result = cold_machine.run("main", [n])

    resumed_machine = Machine(compile_minic(source), fuel=FUEL)
    try:
        frame = resumed_machine.restore_state(anchor["state"])
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # noqa: BLE001 - stale anchor => does not apply
        raise CheckpointError(f"snapshot does not apply: {exc}") from exc
    resumed_result = resumed_machine.resume_frame(frame)

    at = anchor.get("executed")
    if resumed_result != cold_result:
        return (
            f"n={n}: resume from snapshot at {at} returned "
            f"{resumed_result!r}, cold run returned {cold_result!r}"
        )
    if resumed_machine.executed != cold_machine.executed:
        return (
            f"n={n}: resume from snapshot at {at} executed "
            f"{resumed_machine.executed} instructions, cold run "
            f"{cold_machine.executed}"
        )
    if resumed_machine.memory != cold_machine.memory:
        return (
            f"n={n}: resume from snapshot at {at} leaves a different "
            f"final memory image"
        )
    return None
