"""Fuzz campaign driver: generate, check, shrink, report.

One campaign is fully determined by ``(seed, iterations, oracles)``:
iteration ``i`` derives its program from ``derive_rng(seed, i,
"program")`` and each oracle's workload RNG from ``derive_rng(seed, i,
oracle)`` (see :mod:`repro.testkit.seeding`).  Because the oracle RNG is
re-derived *fresh on every predicate call*, the shrinking predicate is
deterministic and a failure replays from its ``(seed, iteration,
oracle)`` coordinates alone -- which is exactly what the corpus stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.telemetry import NULL_TELEMETRY

from .generator import GenConfig, ProgramSpec, generate_program, random_gen_config
from .oracles import ORACLE_NAMES, run_oracle
from .seeding import derive_rng
from .shrink import shrink_program

__all__ = ["FuzzFailure", "FuzzReport", "oracle_predicate", "run_campaign"]


@dataclass
class FuzzFailure:
    """One oracle failure, with its replay coordinates and shrink result."""

    seed: int
    iteration: int
    oracle: str
    detail: str
    spec: ProgramSpec
    shrunk: Optional[ProgramSpec] = None
    shrunk_detail: Optional[str] = None
    #: Snapshot anchor nearest the failure (a ``repro-fuzz-snapshot/1``
    #: document from :mod:`repro.testkit.anchor`), captured over the
    #: minimized reproducer; None when the program finishes before the
    #: first checkpoint boundary or anchoring itself failed.
    snapshot: Optional[dict] = None

    @property
    def reproducer(self) -> ProgramSpec:
        return self.shrunk if self.shrunk is not None else self.spec


@dataclass
class FuzzReport:
    """Campaign outcome: per-oracle counters plus every failure found."""

    seed: int
    iterations: int
    oracles: Sequence[str]
    checked: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_lines(self) -> List[str]:
        lines = [
            f"fuzz: seed={self.seed} iterations={self.iterations} "
            f"oracles={','.join(self.oracles)}"
        ]
        for name in self.oracles:
            failed = sum(1 for f in self.failures if f.oracle == name)
            lines.append(
                f"  {name}: {self.checked.get(name, 0)} checked, "
                f"{failed} failed"
            )
        return lines


def oracle_predicate(
    oracle: str, seed: int, iteration: int
) -> Callable[[ProgramSpec], bool]:
    """The deterministic "still fails?" predicate used for shrinking.

    Re-derives the oracle RNG from the failure coordinates on every
    call, so the same candidate program always gets the same verdict.
    """

    def predicate(spec) -> bool:
        return run_oracle(oracle, spec, derive_rng(seed, iteration, oracle)) is not None

    return predicate


def _anchor_failure(failure: FuzzFailure) -> Optional[dict]:
    """Capture the snapshot nearest the failure, over the minimized
    reproducer and the failing oracle's own workload draw.

    Anchors are best-effort decoration of a failure already in hand --
    any error here (the reproducer crashes the interpreter, say) must
    not mask the failure itself, so it degrades to None."""
    from .anchor import anchor_workload, capture_anchor

    try:
        n = anchor_workload(
            derive_rng(failure.seed, failure.iteration, failure.oracle)
        )
        return capture_anchor(failure.reproducer.source(), n)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:  # noqa: BLE001 - anchoring never masks the failure
        return None


def run_campaign(
    seed: int,
    iterations: int,
    oracles: Optional[Sequence[str]] = None,
    gen_config: Optional[GenConfig] = None,
    shrink: bool = True,
    max_failures: int = 1,
    telemetry=NULL_TELEMETRY,
    on_progress: Optional[Callable[[int, int], None]] = None,
) -> FuzzReport:
    """Run ``iterations`` generated programs through the oracle battery.

    Stops early once ``max_failures`` distinct failures are collected
    (0 = never stop early).  Each failure is shrunk (unless ``shrink``
    is False) with the deterministic predicate above.  ``telemetry``
    receives ``fuzz.program`` spans and per-oracle
    ``fuzz.<oracle>.checked`` / ``fuzz.<oracle>.failed`` counters.
    """
    oracles = tuple(oracles) if oracles else ORACLE_NAMES
    unknown = [name for name in oracles if name not in ORACLE_NAMES]
    if unknown:
        raise ValueError(f"unknown oracle(s): {', '.join(unknown)}")
    report = FuzzReport(seed=seed, iterations=iterations, oracles=oracles)
    for name in oracles:
        report.checked[name] = 0

    for iteration in range(iterations):
        program_rng = derive_rng(seed, iteration, "program")
        config = gen_config or random_gen_config(program_rng)
        spec = generate_program(program_rng, config)
        with telemetry.span("fuzz.program", iteration=iteration):
            for name in oracles:
                detail = run_oracle(name, spec, derive_rng(seed, iteration, name))
                report.checked[name] += 1
                if telemetry.enabled:
                    telemetry.count(f"fuzz.{name}.checked")
                if detail is None:
                    continue
                if telemetry.enabled:
                    telemetry.count(f"fuzz.{name}.failed")
                    telemetry.event(
                        "fuzz.failure",
                        oracle=name,
                        seed=seed,
                        iteration=iteration,
                        detail=detail,
                    )
                failure = FuzzFailure(
                    seed=seed,
                    iteration=iteration,
                    oracle=name,
                    detail=detail,
                    spec=spec,
                )
                if shrink:
                    with telemetry.span(
                        "fuzz.shrink", oracle=name, iteration=iteration
                    ):
                        predicate = oracle_predicate(name, seed, iteration)
                        failure.shrunk = shrink_program(spec, predicate)
                        failure.shrunk_detail = run_oracle(
                            name,
                            failure.shrunk,
                            derive_rng(seed, iteration, name),
                        )
                failure.snapshot = _anchor_failure(failure)
                report.failures.append(failure)
                if max_failures and len(report.failures) >= max_failures:
                    return report
        if on_progress is not None:
            on_progress(iteration + 1, iterations)
    return report
