"""Delta-debugging shrinker for generated MiniC programs.

Given a :class:`~repro.testkit.generator.ProgramSpec` and a predicate
``still_fails(spec) -> bool``, :func:`shrink_program` greedily removes
structure while the predicate keeps holding, in ddmin spirit but
operating on the statement tree instead of on lines:

1. drop whole statements (chunked halving over every block, including
   nested loop/if bodies);
2. hoist loop and ``if`` bodies into their parent block (removing the
   wrapper but keeping the effects the failure may depend on);
3. simplify expressions (replace by a leaf operand or by ``0``/``1``);
4. drop unused helpers, arrays, scalars and checksum cells.

The predicate must be deterministic -- oracles re-derive their RNG from
the failure's seed coordinates on every call (see
:mod:`repro.testkit.runner`), so a shrink session replays exactly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .generator import (
    Assign,
    Bin,
    BreakIf,
    CallExpr,
    Cmp,
    Expr,
    ForStmt,
    IfStmt,
    LoadExpr,
    Num,
    ProgramSpec,
    Ref,
    Stmt,
    StoreStmt,
    WhileStmt,
)

__all__ = ["shrink_program"]

Predicate = Callable[[ProgramSpec], bool]


def _blocks(spec: ProgramSpec) -> List[List[Stmt]]:
    """Every mutable statement list in the program, outermost first."""
    found: List[List[Stmt]] = []

    def visit(block: List[Stmt]) -> None:
        found.append(block)
        for stmt in block:
            if isinstance(stmt, (ForStmt, WhileStmt)):
                visit(stmt.body)
            elif isinstance(stmt, IfStmt):
                visit(stmt.then)
                if stmt.orelse:
                    visit(stmt.orelse)

    visit(spec.body)
    return found


def _stmt_count(spec: ProgramSpec) -> int:
    return sum(len(b) for b in _blocks(spec))


def _try(spec: ProgramSpec, mutate: Callable[[ProgramSpec], bool],
         predicate: Predicate) -> Tuple[ProgramSpec, bool]:
    """Apply ``mutate`` to a clone; keep the clone if it still fails."""
    trial = spec.clone()
    if not mutate(trial):
        return spec, False
    try:
        if predicate(trial):
            return trial, True
    except Exception:
        # A predicate that errors out on the mutant (rather than
        # returning False) just means this mutant is not a keeper.
        pass
    return spec, False


# -- pass 1: statement removal ---------------------------------------------


def _drop_range(block_index: int, start: int, stop: int):
    def mutate(trial: ProgramSpec) -> bool:
        blocks = _blocks(trial)
        if block_index >= len(blocks):
            return False
        block = blocks[block_index]
        if stop > len(block) or start >= stop:
            return False
        del block[start:stop]
        return True

    return mutate


def _shrink_statements(spec: ProgramSpec, predicate: Predicate) -> ProgramSpec:
    progress = True
    while progress:
        progress = False
        for block_index in range(len(_blocks(spec))):
            blocks = _blocks(spec)
            if block_index >= len(blocks):
                break
            size = max(1, len(blocks[block_index]) // 2)
            while size >= 1:
                start = 0
                while True:
                    blocks = _blocks(spec)
                    if block_index >= len(blocks):
                        break
                    block = blocks[block_index]
                    if start >= len(block):
                        break
                    stop = min(start + size, len(block))
                    spec, kept = _try(
                        spec, _drop_range(block_index, start, stop), predicate
                    )
                    if kept:
                        progress = True
                    else:
                        start = stop
                size //= 2
    return spec


# -- pass 2: unwrap loop/if bodies -----------------------------------------


def _unwrap_at(block_index: int, stmt_index: int):
    def mutate(trial: ProgramSpec) -> bool:
        blocks = _blocks(trial)
        if block_index >= len(blocks):
            return False
        block = blocks[block_index]
        if stmt_index >= len(block):
            return False
        stmt = block[stmt_index]
        if isinstance(stmt, ForStmt):
            # Run the body once with the induction variable pinned to 0.
            inner: List[Stmt] = [Assign(stmt.var, Num(0))] + stmt.body
            trial.scalars.append((stmt.var, 0))
            block[stmt_index:stmt_index + 1] = inner
            return True
        if isinstance(stmt, WhileStmt):
            block[stmt_index:stmt_index + 1] = stmt.body
            return True
        if isinstance(stmt, IfStmt):
            block[stmt_index:stmt_index + 1] = stmt.then + stmt.orelse
            return True
        return False

    return mutate


def _shrink_wrappers(spec: ProgramSpec, predicate: Predicate) -> ProgramSpec:
    progress = True
    while progress:
        progress = False
        for block_index in range(len(_blocks(spec))):
            blocks = _blocks(spec)
            if block_index >= len(blocks):
                break
            for stmt_index in range(len(blocks[block_index])):
                spec, kept = _try(
                    spec, _unwrap_at(block_index, stmt_index), predicate
                )
                if kept:
                    progress = True
                    break  # block list shifted; restart this block
            if progress:
                break
    return spec


# -- pass 3: expression simplification --------------------------------------


def _expr_slots(spec: ProgramSpec):
    """(get, set) accessor pairs for every expression in the program."""
    slots = []

    def add(obj, attr):
        slots.append(
            (lambda: getattr(obj, attr),
             lambda value: setattr(obj, attr, value))
        )

    def visit_expr(expr: Expr) -> None:
        for attr in ("a", "b", "index", "cond"):
            child = getattr(expr, attr, None)
            if isinstance(child, Expr):
                visit_expr(child)
        if isinstance(expr, CallExpr):
            for arg in expr.args:
                visit_expr(arg)

    def visit_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            add(stmt, "expr")
            visit_expr(stmt.expr)
        elif isinstance(stmt, StoreStmt):
            add(stmt, "index")
            add(stmt, "expr")
            visit_expr(stmt.index)
            visit_expr(stmt.expr)
        elif isinstance(stmt, IfStmt):
            add(stmt, "cond")
            visit_expr(stmt.cond)
            for child in stmt.then + stmt.orelse:
                visit_stmt(child)
        elif isinstance(stmt, BreakIf):
            add(stmt, "cond")
            visit_expr(stmt.cond)
        elif isinstance(stmt, ForStmt):
            add(stmt, "bound")
            for child in stmt.body:
                visit_stmt(child)
        elif isinstance(stmt, WhileStmt):
            for child in stmt.body:
                visit_stmt(child)

    for stmt in spec.body:
        visit_stmt(stmt)
    for helper in spec.helpers:
        add(helper, "expr")
    return slots


def _replacements(expr: Expr) -> List[Expr]:
    if isinstance(expr, Num):
        return [Num(0)] if expr.value != 0 else []
    out: List[Expr] = []
    if isinstance(expr, (Bin, Cmp)):
        out += [expr.a, expr.b]
    elif isinstance(expr, LoadExpr):
        out.append(expr.index)
    elif isinstance(expr, CallExpr):
        out += list(expr.args)
    out += [Num(1), Num(0)]
    return out


def _replace_slot(slot_index: int, choice_index: int):
    def mutate(trial: ProgramSpec) -> bool:
        slots = _expr_slots(trial)
        if slot_index >= len(slots):
            return False
        get, put = slots[slot_index]
        options = _replacements(get())
        if choice_index >= len(options):
            return False
        put(options[choice_index])
        return True

    return mutate


def _shrink_expressions(spec: ProgramSpec, predicate: Predicate) -> ProgramSpec:
    progress = True
    rounds = 0
    while progress and rounds < 8:
        progress = False
        rounds += 1
        for slot_index in range(len(_expr_slots(spec))):
            for choice_index in range(4):
                spec, kept = _try(
                    spec, _replace_slot(slot_index, choice_index), predicate
                )
                if kept:
                    progress = True
                    break
    return spec


# -- pass 4: declaration cleanup -------------------------------------------


def _drop_decl(kind: str, index: int):
    def mutate(trial: ProgramSpec) -> bool:
        seq = getattr(trial, kind)
        if index >= len(seq):
            return False
        del seq[index]
        return True

    return mutate


def _shrink_decls(spec: ProgramSpec, predicate: Predicate) -> ProgramSpec:
    for kind in ("checksum_cells", "helpers", "arrays", "scalars", "while_vars"):
        index = len(getattr(spec, kind))
        while index > 0:
            index -= 1
            spec, _ = _try(spec, _drop_decl(kind, index), predicate)
    return spec


# -- driver -----------------------------------------------------------------


def shrink_program(
    spec: ProgramSpec,
    predicate: Predicate,
    max_rounds: int = 6,
) -> ProgramSpec:
    """Minimize ``spec`` while ``predicate`` keeps returning True.

    The original ``spec`` is never mutated.  The result is the smallest
    variant found; it is guaranteed to satisfy ``predicate`` (the input
    must, too -- if it does not, the input is returned unchanged).
    """
    try:
        if not predicate(spec):
            return spec
    except Exception:
        return spec
    spec = spec.clone()
    for _ in range(max_rounds):
        before = (_stmt_count(spec), len(spec.source()))
        spec = _shrink_statements(spec, predicate)
        spec = _shrink_wrappers(spec, predicate)
        spec = _shrink_expressions(spec, predicate)
        spec = _shrink_decls(spec, predicate)
        if (_stmt_count(spec), len(spec.source())) == before:
            break
    return spec
