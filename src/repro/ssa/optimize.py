"""SSA cleanup optimizations: copy propagation, constant folding, DCE.

The paper applies exactly this cleanup after the SPT code motion
("the code is immediately cleaned and optimized by applying SSA
renaming, copy propagation and dead code elimination in ORC", §6.2).
The passes here are deliberately simple, fixpoint-iterated versions
that preserve SSA form.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instr import BinOp, Branch, Copy, Jump, Phi, UnOp
from repro.ir.values import Const, Value, Var

_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << int(b),
    "shr": lambda a, b: int(a) >> int(b),
    "min": min,
    "max": max,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


def _fold_binop(instr: BinOp) -> Optional[Const]:
    if not (isinstance(instr.lhs, Const) and isinstance(instr.rhs, Const)):
        return None
    a, b = instr.lhs.value, instr.rhs.value
    if instr.op in ("div", "mod"):
        if b == 0:
            return None
        if instr.op == "div":
            result = a / b if isinstance(a, float) or isinstance(b, float) else int(a / b)
        else:
            result = a - b * int(a / b)
        return Const(result)
    fold = _FOLDABLE.get(instr.op)
    if fold is None:
        return None
    return Const(fold(a, b))


def copy_propagate(func: Function) -> int:
    """Replace uses of copy/single-source-phi destinations by their source.

    Returns the number of rewrites performed.  Safe in SSA form because
    each source value is immutable once defined.
    """
    replacements: Dict[Var, Value] = {}
    for blk in func.blocks:
        for instr in blk.instrs:
            if isinstance(instr, Copy):
                replacements[instr.dest] = instr.src
            elif isinstance(instr, Phi):
                sources = {str(v): v for v in instr.incomings.values()}
                sources.pop(str(instr.dest), None)  # self-reference
                if len(sources) == 1:
                    replacements[instr.dest] = next(iter(sources.values()))

    # Resolve chains (a -> b -> c).
    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, Var) and value in replacements:
            if value in seen:
                break
            seen.add(value)
            value = replacements[value]
        return value

    count = 0
    for blk in func.blocks:
        for instr in blk.instrs:
            for used in list(instr.uses()):
                if isinstance(used, Var):
                    resolved = resolve(used)
                    if resolved != used:
                        instr.replace_use(used, resolved)
                        count += 1
    return count


def fold_constants(func: Function) -> int:
    """Fold constant expressions into copies; returns the fold count."""
    count = 0
    for blk in func.blocks:
        for index, instr in enumerate(blk.instrs):
            folded: Optional[Const] = None
            if isinstance(instr, BinOp):
                folded = _fold_binop(instr)
            elif isinstance(instr, UnOp) and isinstance(instr.src, Const):
                value = instr.src.value
                if instr.op == "neg":
                    folded = Const(-value)
                elif instr.op == "not":
                    folded = Const(not value)
                elif instr.op == "abs":
                    folded = Const(abs(value))
                elif instr.op == "i2f":
                    folded = Const(float(value))
                elif instr.op == "f2i":
                    folded = Const(int(value))
            if folded is not None:
                blk.instrs[index] = Copy(instr.dest, folded)
                count += 1
    return count


def eliminate_dead_code(func: Function) -> int:
    """Remove side-effect-free instructions with unused destinations."""
    removed_total = 0
    while True:
        used = set()
        for blk in func.blocks:
            for instr in blk.instrs:
                for value in instr.uses():
                    if isinstance(value, Var):
                        used.add(value)
        removed = 0
        for blk in func.blocks:
            kept = []
            for instr in blk.instrs:
                dead = (
                    instr.dest is not None
                    and instr.dest not in used
                    and not instr.has_side_effects
                    and not instr.is_terminator
                )
                if dead:
                    removed += 1
                else:
                    kept.append(instr)
            blk.instrs = kept
        removed_total += removed
        if removed == 0:
            return removed_total


def simplify_branches(func: Function) -> int:
    """Turn branches on constants into jumps.

    The blocks this strands are deleted by
    :func:`remove_unreachable_blocks` (run together in :func:`optimize`),
    which also purges the stale phi incomings -- popping incomings here
    would miss dead paths that run through intermediate blocks.
    """
    count = 0
    for blk in func.blocks:
        term = blk.terminator
        if isinstance(term, Branch) and isinstance(term.cond, Const):
            taken = term.iftrue if term.cond.value else term.iffalse
            blk.instrs[-1] = Jump(taken)
            count += 1
    return count


def remove_unreachable_blocks(func: Function) -> int:
    """Delete blocks unreachable from the entry and drop phi incomings
    that referenced them.  Essential hygiene: stale unreachable defs
    confuse every dominance-based pass downstream."""
    from repro.analysis.cfg import CFG

    reachable = CFG.build(func).reachable()
    gone = {blk.label for blk in func.blocks if blk.label not in reachable}
    if not gone:
        return 0
    func.blocks = [blk for blk in func.blocks if blk.label in reachable]
    for blk in func.blocks:
        for phi in blk.phis():
            for label in list(phi.incomings):
                if label in gone:
                    phi.incomings.pop(label)
    return len(gone)


def optimize(func: Function, max_rounds: int = 10) -> None:
    """Run the cleanup pipeline to a fixpoint (bounded)."""
    for _ in range(max_rounds):
        changed = 0
        changed += copy_propagate(func)
        changed += fold_constants(func)
        changed += simplify_branches(func)
        changed += remove_unreachable_blocks(func)
        changed += eliminate_dead_code(func)
        if changed == 0:
            break
