"""Pruned SSA construction (Cytron-style).

Phi nodes are placed at iterated dominance frontiers of each variable's
definition sites, restricted to variables live across a join (pruned
form, approximated via semi-pruned "non-local" variables: variables used
in a block before being defined there).  Renaming walks the dominator
tree, versioning each base variable as ``name.N``.

The paper's framework runs inside ORC's SSA-based WOPT phase (§1); this
module is our equivalent entry point: the frontend emits non-SSA IR and
everything downstream assumes `build_ssa` has run.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instr import Phi
from repro.ir.values import Const, Var


def _non_local_variables(func: Function) -> Set[str]:
    """Base names used in some block before any local definition.

    Only these can be live across a join, so only these need phis
    (semi-pruned SSA).
    """
    non_local: Set[str] = set()
    for blk in func.blocks:
        defined: Set[str] = set()
        for instr in blk.instrs:
            for value in instr.uses():
                if isinstance(value, Var) and value.name not in defined:
                    non_local.add(value.name)
            if instr.dest is not None:
                defined.add(instr.dest.name)
    return non_local


def _definition_blocks(func: Function) -> Dict[str, Set[str]]:
    sites: Dict[str, Set[str]] = {}
    for param in func.params:
        sites.setdefault(param.name, set()).add(func.entry.label)
    for blk in func.blocks:
        for instr in blk.instrs:
            if instr.dest is not None:
                sites.setdefault(instr.dest.name, set()).add(blk.label)
    return sites


def build_ssa(func: Function) -> None:
    """Convert ``func`` to SSA form in place."""
    cfg = CFG.build(func)
    domtree = DominatorTree.build(func, cfg=cfg)
    frontiers = domtree.dominance_frontiers()
    reachable = cfg.reachable()

    # Drop unreachable blocks first; they have no dominator information.
    func.blocks = [blk for blk in func.blocks if blk.label in reachable]
    cfg = CFG.build(func)
    domtree = DominatorTree.build(func, cfg=cfg)
    frontiers = domtree.dominance_frontiers()

    non_local = _non_local_variables(func)
    def_blocks = _definition_blocks(func)
    block_map = func.block_map()

    # -- phi placement at iterated dominance frontiers -----------------
    phi_placed: Dict[str, Set[str]] = {blk.label: set() for blk in func.blocks}
    for name, sites in def_blocks.items():
        if name not in non_local and len(sites) <= 1:
            continue
        worklist = list(sites)
        while worklist:
            site = worklist.pop()
            for frontier_label in frontiers.get(site, ()):
                if name in phi_placed[frontier_label]:
                    continue
                phi_placed[frontier_label].add(name)
                var = Var(name)
                block_map[frontier_label].add_phi(Phi(var, {}))
                if frontier_label not in sites:
                    sites = sites | {frontier_label}
                    worklist.append(frontier_label)

    # -- renaming --------------------------------------------------------
    counters: Dict[str, int] = {}
    stacks: Dict[str, List[Var]] = {}

    def fresh_version(name: str) -> Var:
        counters[name] = counters.get(name, 0) + 1
        var = Var(name).with_version(counters[name])
        stacks.setdefault(name, []).append(var)
        return var

    def current(name: str) -> Var:
        stack = stacks.get(name)
        if not stack:
            # Use of a variable on a path with no definition: treat as an
            # implicit zero-initialized version (mirrors the frontend's
            # default-initialized locals).
            return fresh_version(name)
        return stack[-1]

    new_params = []
    for param in func.params:
        new_params.append(fresh_version(param.name))
    func.params = new_params

    def rename_block(label: str) -> None:
        blk = block_map[label]
        pushed: List[str] = []

        for instr in blk.instrs:
            if not isinstance(instr, Phi):
                for value in list(instr.uses()):
                    if isinstance(value, Var):
                        instr.replace_use(value, current(value.base))
            if instr.dest is not None:
                base = instr.dest.base
                instr.dest = fresh_version(base)
                pushed.append(base)

        for succ_label in cfg.succs[label]:
            succ = block_map[succ_label]
            for phi in succ.phis():
                base = phi.dest.base
                if stacks.get(base):
                    phi.incomings[label] = current(base)
                else:
                    phi.incomings[label] = Const(0)

        for child in sorted(domtree.children(label)):
            rename_block(child)

        for base in pushed:
            stacks[base].pop()

    rename_block(func.entry.label)

    # Phis whose incomings never got a version on some path keep Const(0);
    # drop degenerate phis with no incomings (unreachable joins).
    for blk in func.blocks:
        blk.instrs = [
            instr
            for instr in blk.instrs
            if not (isinstance(instr, Phi) and not instr.incomings)
        ]
