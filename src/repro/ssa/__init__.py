"""SSA construction, destruction, and cleanup optimizations."""

from repro.ssa.construct import build_ssa
from repro.ssa.destruct import destruct_ssa
from repro.ssa.optimize import (
    copy_propagate,
    eliminate_dead_code,
    fold_constants,
    optimize,
    simplify_branches,
)

__all__ = [
    "build_ssa",
    "copy_propagate",
    "destruct_ssa",
    "eliminate_dead_code",
    "fold_constants",
    "optimize",
    "simplify_branches",
]
