"""Out-of-SSA translation.

Phi nodes are replaced by copies at the end of each predecessor block
(with edge splitting when the predecessor has multiple successors, to
avoid the lost-copy problem).  Parallel-copy semantics are respected by
first copying every phi source into a fresh temporary, then the
temporaries into the destinations -- this also neutralizes the swap
problem without a full interference analysis.

The interpreter executes phi nodes natively, so destruction is only
needed when emitting "machine-like" linear code; it is exercised by
tests to validate SSA round-tripping.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.cfg import CFG, split_edge
from repro.ir.function import Function
from repro.ir.instr import Copy, Phi
from repro.ir.values import Value, Var


def destruct_ssa(func: Function) -> None:
    """Replace all phi nodes with copies, in place."""
    cfg = CFG.build(func)

    # Split critical edges into blocks that contain phis.
    for blk in list(func.blocks):
        if not any(True for _ in blk.phis()):
            continue
        for pred_label in list(cfg.preds[blk.label]):
            if len(cfg.succs[pred_label]) > 1:
                split_edge(func, pred_label, blk.label, "crit")
                cfg = CFG.build(func)

    cfg = CFG.build(func)
    block_map = func.block_map()

    # Gather copies to insert: pred label -> list of (dest, src).
    pending: Dict[str, List[Tuple[Var, Value]]] = {}
    for blk in func.blocks:
        for phi in list(blk.phis()):
            for pred_label, value in phi.incomings.items():
                pending.setdefault(pred_label, []).append((phi.dest, value))
        blk.instrs = [i for i in blk.instrs if not isinstance(i, Phi)]

    for pred_label, moves in pending.items():
        pred = block_map[pred_label]
        temps: List[Tuple[Var, Value]] = []
        for dest, src in moves:
            temp = func.fresh_var(f"phi_{dest.base}")
            pred.insert_before_terminator(Copy(temp, src))
            temps.append((dest, temp))
        for dest, temp in temps:
            pred.insert_before_terminator(Copy(dest, temp))
