"""SSA repair after code motion.

The SPT transformation physically moves statements into the pre-fork
region, which can break the SSA dominance property: a definition moved
into a conditional arm of the replicated pre-fork CFG no longer
dominates its post-fork uses (the paper hits the same issue as
overlapping live ranges, Figures 10/11, and fixes it with temporaries
followed by SSA renaming).  This module is our equivalent of that
"immediately cleaned and optimized by applying SSA renaming" step: a
per-variable SSA reconstruction in the style of LLVM's ``SSAUpdater``.

For each broken variable we insert fresh phi nodes at the iterated
dominance frontier of its definition sites and rewrite the uses to the
nearest reaching definition.  Paths on which the variable is dynamically
dead receive an explicit zero (they are never read).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instr import Instr, Phi
from repro.ir.values import Const, Value, Var


def broken_variables(func: Function) -> List[Var]:
    """Registers with a *reachable* use not dominated by their definition.

    Unreachable blocks are ignored entirely: their uses can never
    execute, and dominance is undefined for them.
    """
    cfg = CFG.build(func)
    reachable = cfg.reachable()
    domtree = DominatorTree.build(func, cfg=cfg)
    defs: Dict[Var, tuple] = {}
    for param in func.params:
        defs[param] = (func.entry.label, -1)
    for blk in func.blocks:
        for index, instr in enumerate(blk.instrs):
            if instr.dest is not None:
                defs[instr.dest] = (blk.label, index)

    broken: List[Var] = []
    seen: Set[Var] = set()
    for blk in func.blocks:
        if blk.label not in reachable:
            continue
        for index, instr in enumerate(blk.instrs):
            if isinstance(instr, Phi):
                for pred_label, value in instr.incomings.items():
                    if not isinstance(value, Var):
                        continue
                    if value in seen or value not in defs:
                        continue
                    if pred_label not in reachable:
                        continue  # dead incoming path
                    def_block, def_index = defs[value]
                    ok = def_block == pred_label or domtree.dominates(
                        def_block, pred_label
                    )
                    if not ok:
                        seen.add(value)
                        broken.append(value)
            else:
                for value in instr.uses():
                    if not isinstance(value, Var) or value in seen:
                        continue
                    if value not in defs:
                        continue
                    def_block, def_index = defs[value]
                    if def_block == blk.label:
                        ok = def_index < index
                    else:
                        ok = domtree.dominates(def_block, blk.label)
                    if not ok:
                        seen.add(value)
                        broken.append(value)
    return broken


class _Updater:
    """Per-variable SSA reconstruction."""

    def __init__(self, func: Function, cfg: CFG, domtree: DominatorTree, var: Var):
        self.func = func
        self.cfg = cfg
        self.domtree = domtree
        self.var = var
        #: value available at the *end* of each block.
        self.value_out: Dict[str, Value] = {}
        self._counter = 0

    def fresh_name(self) -> Var:
        self._counter += 1
        return Var(f"{self.var.name}.r{self._counter}", self.var.type, base=self.var.base)

    def run(self) -> None:
        var = self.var
        def_blocks: Set[str] = set()
        for blk in self.func.blocks:
            for instr in blk.instrs:
                if instr.dest == var:
                    def_blocks.add(blk.label)
        if var in self.func.params:
            def_blocks.add(self.func.entry.label)
        if not def_blocks:
            return

        frontiers = self.domtree.dominance_frontiers()
        phi_blocks: Set[str] = set()
        worklist = list(def_blocks)
        while worklist:
            label = worklist.pop()
            for frontier in frontiers.get(label, ()):
                if frontier not in phi_blocks:
                    phi_blocks.add(frontier)
                    if frontier not in def_blocks:
                        worklist.append(frontier)

        # Insert repair phis with fresh destination names.  A block that
        # already defines the variable needs no additional merge there.
        inserted: Dict[str, Phi] = {}
        for label in phi_blocks:
            if label in def_blocks:
                continue
            phi = Phi(self.fresh_name(), {})
            self.func.block(label).add_phi(phi)
            inserted[label] = phi

        # Compute the reaching value at the end of every block.
        def value_at_end(label: str, visiting: Set[str]) -> Value:
            if label in self.value_out:
                return self.value_out[label]
            if label in visiting:
                return Const(0)
            visiting.add(label)
            blk = self.func.block(label)
            result: Optional[Value] = None
            for instr in reversed(blk.instrs):
                if instr.dest == var:
                    result = var
                    break
                if (
                    isinstance(instr, Phi)
                    and instr.dest is not None
                    and inserted.get(label) is instr
                ):
                    result = instr.dest
                    break
            if result is None:
                if label in inserted:
                    result = inserted[label].dest
                elif label == self.func.entry.label:
                    result = var if var in self.func.params else Const(0)
                else:
                    idom = self.domtree.idom.get(label)
                    result = (
                        value_at_end(idom, visiting) if idom is not None else Const(0)
                    )
            self.value_out[label] = result
            return result

        # Fill phi incomings.
        for label, phi in inserted.items():
            for pred in self.cfg.preds[label]:
                phi.incomings[pred] = value_at_end(pred, set())

        # Rewrite uses to the nearest reaching definition.
        def value_at(label: str, index: int) -> Value:
            blk = self.func.block(label)
            for prior in reversed(blk.instrs[:index]):
                if prior.dest == var:
                    return var
                if isinstance(prior, Phi) and inserted.get(label) is prior:
                    return prior.dest
            if label in inserted:
                return inserted[label].dest
            if label == self.func.entry.label:
                return var if var in self.func.params else Const(0)
            idom = self.domtree.idom.get(label)
            return value_at_end(idom, set()) if idom is not None else Const(0)

        for blk in self.func.blocks:
            for index, instr in enumerate(blk.instrs):
                if isinstance(instr, Phi):
                    if blk.label in inserted and inserted[blk.label] is instr:
                        continue
                    for pred_label, value in list(instr.incomings.items()):
                        if value == var:
                            pred = self.func.block(pred_label)
                            replacement = value_at_end(pred_label, set())
                            if replacement != var:
                                instr.incomings[pred_label] = replacement
                else:
                    for value in list(instr.uses()):
                        if value == var:
                            replacement = value_at(blk.label, index)
                            if replacement != var:
                                instr.replace_use(var, replacement)


def repair_ssa(func: Function, variables: List[Var] = None) -> List[Var]:
    """Re-establish SSA dominance for ``variables`` (or autodetect).

    Returns the list of variables repaired.
    """
    if variables is None:
        variables = broken_variables(func)
    if not variables:
        return []
    cfg = CFG.build(func)
    domtree = DominatorTree.build(func, cfg=cfg)
    for var in variables:
        _Updater(func, cfg, domtree, var).run()
    return variables
