"""Ablation: selection-threshold sensitivity (paper §6.1 criteria).

Sweeps the misspeculation-cost threshold and the pre-fork size
threshold on one benchmark and reports how many loops pass -- the
design-space the paper's fixed thresholds sit in.
"""

from conftest import emit

from repro.benchsuite import BY_NAME
from repro.core import Workload, best_config, compile_spt
from repro.frontend import compile_minic
from repro.report.tables import format_table

BENCH = "bzip2"


def _selected_under(cost_fraction: float, prefork_fraction: float) -> int:
    bench = BY_NAME[BENCH]
    module = compile_minic(bench.source, name=bench.name)
    config = best_config().with_overrides(
        cost_fraction=cost_fraction, prefork_fraction=prefork_fraction
    )
    result = compile_spt(module, config, Workload(args=(bench.train_n,)))
    return len(result.selected)


def test_threshold_sweep(benchmark):
    sweep = [
        (0.02, 0.4),
        (0.15, 0.4),
        (0.50, 0.4),
        (0.15, 0.1),
        (0.15, 0.8),
    ]

    def run_sweep():
        return [
            (cost, pre, _selected_under(cost, pre)) for cost, pre in sweep
        ]

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "ablation_thresholds",
        format_table(
            ["cost threshold", "pre-fork threshold", "#selected"],
            rows,
            title=f"Ablation: selection thresholds on {BENCH}",
        ),
    )
    by_cost = {cost: n for cost, pre, n in rows if pre == 0.4}
    # A looser cost threshold can only admit more loops.
    assert by_cost[0.02] <= by_cost[0.15] <= by_cost[0.50]
