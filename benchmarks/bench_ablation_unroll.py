"""Ablation: loop unrolling's contribution (paper §7.1).

The paper fattens small loop bodies to amortize fork/commit overheads.
This bench compiles one benchmark with unrolling disabled, with the
default target, and with an aggressive target, and compares the
program speedups.
"""

from conftest import emit

from repro.benchsuite import BY_NAME
from repro.benchsuite.runner import run_benchmark
from repro.core import best_config
from repro.report.tables import format_table

BENCH = "gap"


def test_unroll_ablation(benchmark):
    bench = BY_NAME[BENCH]
    variants = [
        ("no unrolling", best_config().with_overrides(enable_unrolling=False)),
        ("target 64 (default)", best_config()),
        ("target 128", best_config().with_overrides(unroll_target_size=128)),
    ]

    def run_all():
        return [
            (label, run_benchmark(bench, config, label).program_speedup)
            for label, config in variants
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "ablation_unroll",
        format_table(
            ["configuration", "program speedup"],
            rows,
            title=f"Ablation: unrolling on {BENCH}",
        ),
    )
    speedups = dict(rows)
    # Unrolling must help versus tiny bodies.
    assert speedups["target 64 (default)"] >= speedups["no unrolling"] - 0.02
