"""Figure 14: program speedup under basic / best / anticipated
compilation.

The paper reports averages of 1% (basic), 8% (best) and 15.6%
(anticipated).  The shape to check: basic gains almost nothing, adding
SVP + dependence profiling unlocks most of the speedup, and the
anticipated techniques (while-loop unrolling, privatization,
interprocedural summaries) add a further sizeable step.
"""

from conftest import emit

from repro.report import figure14_rows, figure14_text


def test_fig14_speedup_by_compilation(benchmark):
    rows = benchmark.pedantic(figure14_rows, rounds=1, iterations=1)
    emit("fig14", figure14_text())

    averages = {"basic": rows[-1][1], "best": rows[-1][2], "anticipated": rows[-1][3]}
    # Ordering: basic << best < anticipated.
    assert averages["basic"] < averages["best"] < averages["anticipated"]
    # Basic gains are marginal (paper: 1%).
    assert averages["basic"] < 1.08
    # The enabling techniques unlock real speedup (paper: 8% -> 15.6%).
    assert averages["best"] > 1.05
    assert averages["anticipated"] > averages["best"] + 0.02
    # No configuration may lose performance on any benchmark.
    for row in rows[:-1]:
        assert min(row[1:]) > 0.97, row
