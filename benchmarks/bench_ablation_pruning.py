"""Ablation: branch-and-bound pruning in the optimal-partition search
(paper §5.2.1).

The paper prunes the exponential search with two monotonicity
heuristics.  This bench builds a loop with a long chain of violation
candidates and measures the search with and without the lower-bound
pruning; both must find the same optimum, and pruning must visit far
fewer subsets.
"""

from conftest import emit

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.partition import find_optimal_partition
from repro.ir import parse_module
from repro.report.tables import format_table
from repro.ssa import build_ssa

N_VCS = 14


def _many_vc_loop(n_vcs: int = N_VCS):
    """A loop with ``n_vcs`` independent carried accumulators."""
    decls = "\n".join(f"  v{i} = copy 0" for i in range(n_vcs))
    body = "\n".join(
        f"  v{i} = add v{i}, {i + 1}" for i in range(n_vcs)
    )
    source = f"""\
module t
func main(n) {{
entry:
{decls}
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
{body}
  i = add i, 1
  jump head
exit:
  ret v0
}}
"""
    module = parse_module(source)
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    graph = build_dep_graph(module, func, nest.loops[0])
    return graph


CONFIG = SptConfig(prefork_fraction=0.5, max_violation_candidates=40)


def test_partition_search_with_pruning(benchmark):
    graph = _many_vc_loop()
    result = benchmark(lambda: find_optimal_partition(graph, CONFIG, use_pruning=True))
    assert result.search_nodes > 0


def test_partition_search_without_pruning(benchmark):
    graph = _many_vc_loop()
    result = benchmark(
        lambda: find_optimal_partition(graph, CONFIG, use_pruning=False)
    )
    assert result.search_nodes > 0


def test_pruning_preserves_optimum_and_shrinks_search(benchmark):
    graph = _many_vc_loop()

    def both():
        pruned = find_optimal_partition(graph, CONFIG, use_pruning=True)
        unpruned = find_optimal_partition(graph, CONFIG, use_pruning=False)
        return pruned, unpruned

    pruned, unpruned = benchmark.pedantic(both, rounds=1, iterations=1)
    assert abs(pruned.cost - unpruned.cost) < 1e-9
    assert pruned.search_nodes <= unpruned.search_nodes
    emit(
        "ablation_pruning",
        format_table(
            ["search", "subsets visited", "optimal cost"],
            [
                ("with pruning", pruned.search_nodes, pruned.cost),
                ("without pruning", unpruned.search_nodes, unpruned.cost),
            ],
            title=f"Ablation: B&B pruning ({N_VCS} violation candidates)",
        ),
    )
