"""Extension bench (§9 future work): intra-iteration region speculation
recovers loops the SPT selection rejects for too-large bodies.

A loop whose body exceeds the speculative-buffer limit cannot become an
SPT loop (Figure 15's body_too_large category).  Splitting the body at
a spine block and running the halves on the two cores recovers the
parallelism when the halves are independent.
"""

from conftest import emit

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core import SptConfig, Workload, compile_spt
from repro.core.regions import choose_region_split
from repro.core.selection import CATEGORY_BODY_TOO_LARGE
from repro.ir import parse_module
from repro.machine.region_sim import RegionTraceCollector, simulate_region_loop
from repro.machine.timing import TimingModel
from repro.profiling import run_module
from repro.report.tables import format_table


def _chain(prefix: str, length: int, seed: str) -> str:
    lines = [f"  {prefix}0 = add {seed}, 1"]
    for k in range(1, length):
        op = "mul" if k % 2 else "add"
        lines.append(f"  {prefix}{k} = {op} {prefix}{k - 1}, {k % 7 + 2}")
    return "\n".join(lines)


#: A loop body of ~600 elementary ops: far over the 1000/2 default cap
#: once unrolling is accounted for, and cleanly splittable in half.
def _big_body_program(chain_len: int = 300) -> str:
    return f"""\
module t
func main(n) {{
  local left[256]
  local right[256]
entry:
  pl = addr left
  pr = addr right
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, phase_a, exit
phase_a:
  m = and i, 255
{_chain("a", chain_len, "i")}
  store pl, m, a{chain_len - 1} !left
  jump phase_b
phase_b:
  mb = and i, 255
{_chain("b", chain_len, "i")}
  store pr, mb, b{chain_len - 1} !right
  i = add i, 1
  jump head
exit:
  ret 0
}}
"""


def test_region_speculation_recovers_large_loop(benchmark):
    source = _big_body_program()
    config = SptConfig(
        max_body_size=400, enable_region_speculation=True, enable_unrolling=False
    )

    def run_experiment():
        module = parse_module(source)
        result = compile_spt(module, config, Workload(args=(50,)))
        # The loop is too big for ordinary SPT...
        categories = result.category_histogram()
        assert categories[CATEGORY_BODY_TOO_LARGE] >= 1
        assert not result.selected
        # ...but region speculation found a split.
        assert result.region_splits, "no region split found"
        split = result.region_splits[0]

        func = module.function("main")
        nest = LoopNest.build(func)
        loop = next(l for l in nest.loops if l.header == split.loop.header)
        collector = RegionTraceCollector(
            "main", loop.header, loop.body, split.b_labels, TimingModel()
        )
        run_module(module, args=[120], tracers=[collector])
        stats = simulate_region_loop(collector, split.split_label)
        return split, stats

    split, stats = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    emit(
        "extension_regions",
        format_table(
            ["metric", "value"],
            [
                ("split block", split.split_label),
                ("region A size (ops)", f"{split.size_a:.0f}"),
                ("region B size (ops)", f"{split.size_b:.0f}"),
                ("estimated re-exec cost", f"{split.cost:.2f}"),
                ("simulated loop speedup", f"{stats.loop_speedup:.3f}"),
                ("misspeculation ratio", f"{stats.misspeculation_ratio:.3f}"),
                ("A/B balance", f"{stats.balance:.3f}"),
            ],
            title="Extension (§9): intra-iteration region speculation",
        ),
    )
    assert stats.loop_speedup > 1.4
    assert stats.misspeculation_ratio < 0.1
    assert stats.balance > 0.8
