"""Figure 15: breakdown of loop candidates by transformability.

The paper reports that only a minority of loops get a valid partition;
~34% are while loops with too-small bodies, ~35% fail on iteration
count or body size, and only a few are skipped for having too many
violation candidates.
"""

from conftest import emit

from repro.core.selection import (
    CATEGORY_BODY_TOO_SMALL,
    CATEGORY_TOO_MANY_VCS,
    CATEGORY_VALID,
)
from repro.report import figure15_rows, figure15_text


def test_fig15_loop_breakdown(benchmark):
    rows = benchmark.pedantic(figure15_rows, rounds=1, iterations=1)
    emit("fig15", figure15_text())

    shares = {category: share for category, _, share in rows}
    counts = {category: count for category, count, _ in rows}
    assert sum(counts.values()) > 0
    # Some loops are valid, but far from all of them.
    assert 0.0 < shares[CATEGORY_VALID] < 0.8
    # Small bodies are a major rejection reason (paper: 34%).
    assert shares[CATEGORY_BODY_TOO_SMALL] > 0.05
    # Too-many-VC skips are rare (paper: "only a few loops").
    assert shares[CATEGORY_TOO_MANY_VCS] < 0.2
