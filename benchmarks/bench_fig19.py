"""Figure 19: compiler-estimated misspeculation cost vs. the measured
re-execution ratio, per SPT loop.

Paper: the two are well correlated, with the estimates on the
conservative (high) side -- the data clusters toward the y-axis.
"""

from conftest import emit

from repro.report import figure19_correlation, figure19_points, figure19_text


def test_fig19_cost_vs_reexecution(benchmark):
    points = benchmark.pedantic(figure19_points, rounds=1, iterations=1)
    emit("fig19", figure19_text())

    assert len(points) >= 3, "need several SPT loops to correlate"
    correlation = figure19_correlation()
    assert correlation > 0.3, f"estimate/measurement correlation {correlation}"

    # Conservatism: on average the estimate sits above the measurement.
    over = sum(1 for _, est, measured in points if est >= measured - 1e-9)
    assert over >= len(points) * 0.6
