"""Figure 16: runtime coverage of the selected SPT loops, against the
maximum coverage of all loops within the size limit, plus the number of
SPT loops per benchmark.

Paper: SPT loops cover ~30% of execution cycles out of a 68% maximum
(realizing ~40% of the opportunity), with ~30 SPT loops per benchmark
(a few hot loops dominate).
"""

from conftest import emit

from repro.report import figure16_rows, figure16_text


def test_fig16_runtime_coverage(benchmark):
    rows = benchmark.pedantic(figure16_rows, rounds=1, iterations=1)
    emit("fig16", figure16_text())

    avg_cov, avg_max, avg_loops = rows[-1][1], rows[-1][2], rows[-1][3]
    # SPT coverage is substantial but below the all-loops maximum.
    assert 0.1 < avg_cov <= avg_max + 1e-9
    assert avg_max > 0.3
    # A few hot loops per benchmark, not dozens.
    assert 0.5 <= avg_loops <= 10
    for name, cov, max_cov, loops in rows[:-1]:
        assert cov <= max_cov + 0.05, (name, cov, max_cov)
