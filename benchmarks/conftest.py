"""Shared helpers for the evaluation benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper.
The expensive part -- compiling and simulating the ten-benchmark suite
under the three compiler configurations -- is memoized inside
``repro.report.experiments``, so the full harness performs it once per
pytest session regardless of how many figures consume it.

Every figure's rows are printed to stdout (visible with ``-s``) and
written to ``benchmarks/results/<name>.txt``.
"""

import json
import os

import pytest

from repro.testkit.seeding import base_seed, derive_rng, derive_seed

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


# -- seeding -----------------------------------------------------------------
#
# Benchmarks share the fuzzing subsystem's RNG convention
# (repro.testkit.seeding): every random stream is a *private*
# ``random.Random`` derived from ``(REPRO_TEST_SEED, *labels)``, never
# the global ``random`` module.  That keeps results reproducible under
# ``pytest -p no:randomly`` (or with pytest-randomly's reordering and
# global reseeding enabled -- nothing here reads global RNG state) and
# lets one environment variable re-seed benchmarks and fuzz runs alike.

def bench_rng(*labels):
    """A private RNG for the benchmark stream named by ``labels``."""
    return derive_rng(base_seed(), "bench", *labels)


def bench_seed(*labels) -> int:
    """A derived integer seed for APIs that take seeds, not RNGs."""
    return derive_seed(base_seed(), "bench", *labels)


@pytest.fixture
def rng(request):
    """Per-test private RNG, derived from the test's own node id."""
    return bench_rng(request.node.nodeid)


def emit(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)


def emit_json(name: str, payload: dict) -> str:
    """Append one machine-readable benchmark entry to the trajectory at
    ``benchmarks/results/<name>.json`` -- the same directory as the
    figure text outputs, so every benchmark artifact (and the CI upload
    steps) agree on placement.

    The file holds a JSON *list*, newest entry last; each entry is the
    caller's payload stamped with a ``recorded_at`` UTC timestamp, so
    the committed file accumulates a cross-PR perf trajectory instead
    of losing history on every rewrite.  Pre-trajectory files holding a
    single document are migrated to a one-entry list on first append.
    Serialization stays canonical (sorted keys, trailing newline).
    Returns the path written."""
    import datetime

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    trajectory = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
        except ValueError:
            existing = []
        if isinstance(existing, list):
            trajectory = existing
        elif isinstance(existing, dict):
            # Legacy single-document file: keep it as the first entry.
            trajectory = [existing]
    entry = dict(payload)
    entry["recorded_at"] = (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
    )
    trajectory.append(entry)
    with open(path, "w") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
