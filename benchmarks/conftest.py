"""Shared helpers for the evaluation benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper.
The expensive part -- compiling and simulating the ten-benchmark suite
under the three compiler configurations -- is memoized inside
``repro.report.experiments``, so the full harness performs it once per
pytest session regardless of how many figures consume it.

Every figure's rows are printed to stdout (visible with ``-s``) and
written to ``benchmarks/results/<name>.txt``.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
