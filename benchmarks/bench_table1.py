"""Table 1: IPC (excluding nops) of the non-SPT base reference.

Regenerates the paper's Table 1 for the synthetic suite: each benchmark
compiled without SPT and timed on one core.  The shape to check: gzip
and bzip2 at the top (~1.7), the pointer-chasers mcf and vortex at the
bottom.
"""

from conftest import emit

from repro.report import PAPER_IPC, table1_rows, table1_text


def test_table1_base_ipc(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    emit("table1", table1_text())

    measured = {name: ipc for name, ipc, _ in rows}
    # Shape assertions: the ranking extremes of Table 1 hold.
    assert measured["mcf"] == min(measured.values())
    assert measured["mcf"] < 0.8
    assert measured["vortex"] < 1.2
    assert measured["gzip"] > 1.4
    assert measured["bzip2"] > 1.4
    for name, ipc in measured.items():
        assert abs(ipc - PAPER_IPC[name]) < 0.6, (name, ipc)
