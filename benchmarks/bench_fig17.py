"""Figure 17: average SPT loop body size and pre-fork characteristics.

Paper: a speculative parallel loop executes ~400 instructions per
iteration, and the pre-fork region is a small fraction of it (the whole
point of the optimal partition is to keep the sequential part tiny).
"""

from conftest import emit

from repro.report import figure17_rows, figure17_text


def test_fig17_body_and_prefork(benchmark):
    rows = benchmark.pedantic(figure17_rows, rounds=1, iterations=1)
    emit("fig17", figure17_text())

    populated = [row for row in rows if row[1] > 0]
    assert populated, "no SPT loops selected"
    for name, body_ops, pre_cycle_frac, pre_size_frac in populated:
        # Unrolling fattens bodies well beyond the raw source loops.
        assert body_ops > 20, (name, body_ops)
        # Pre-fork regions stay a small fraction of the iteration.
        assert pre_cycle_frac < 0.45, (name, pre_cycle_frac)
        assert pre_size_frac < 0.45, (name, pre_size_frac)
