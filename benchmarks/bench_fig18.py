"""Figure 18: per-SPT-loop misspeculation ratio and loop speedup.

Paper: the cost-driven selection keeps the average misspeculation ratio
around 3% while the selected loops run ~26% faster than their
sequential versions.
"""

from conftest import emit

from repro.report import figure18_rows, figure18_text


def test_fig18_loop_performance(benchmark):
    rows = benchmark.pedantic(figure18_rows, rounds=1, iterations=1)
    emit("fig18", figure18_text())

    loops = rows[:-1]
    avg_misspec, avg_speedup = rows[-1][1], rows[-1][2]
    assert loops, "no SPT loops selected"
    # Low misspeculation is the whole point of the cost model.
    assert avg_misspec < 0.12
    # Selected loops actually speed up.
    assert avg_speedup > 1.15
    for name, misspec, speedup in loops:
        assert misspec < 0.35, (name, misspec)
        assert speedup > 0.95, (name, speedup)
