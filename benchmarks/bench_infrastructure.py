"""Microbenchmarks of the framework's own hot paths: interpreter
throughput, cost-model evaluation, and dependence-graph construction.

These are pytest-benchmark timings (multiple rounds) rather than
one-shot experiment reproductions.
"""

import json
import os
import time

from conftest import RESULTS_DIR, bench_rng, emit_json

from repro.analysis.cfg import CFG
from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.benchsuite import SUITE
from repro.core import best_config, find_optimal_partition
from repro.core.costgraph import CostGraph, build_cost_graph
from repro.core.costmodel import misspeculation_cost
from repro.core.transform import TransformError, check_transformable
from repro.core.unroll import unroll_function
from repro.core.violation import find_violation_candidates
from repro.frontend import compile_minic
from repro.profiling import CompiledMachine, EdgeProfile, Machine
from repro.ssa import build_ssa, optimize

SOURCE = """
global int data[512];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 511];
        int a = x * 3 + i;
        int b = (a << 2) ^ x;
        data[i & 511] = b & 1023;
        s += b & 31;
    }
    return s;
}
"""


def _module():
    module = compile_minic(SOURCE)
    for func in module.functions.values():
        build_ssa(func)
        optimize(func)
    return module


def test_interpreter_throughput(benchmark):
    module = _module()

    def run():
        return Machine(module).run("main", [2000])

    result = benchmark(run)
    assert isinstance(result, int)


def test_interpreter_throughput_fast(benchmark):
    """Same workload on the block-compiled fast path."""
    module = _module()

    def run():
        return CompiledMachine(module).run("main", [2000])

    result = benchmark(run)
    assert result == Machine(module).run("main", [2000])


def _time_best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_interpreter_speedup():
    """The tentpole acceptance bar: the compiled interpreter must be at
    least 3x faster than the reference interpreter on the profiling
    workload (measured ~4.2x without tracers)."""
    module = _module()
    n = 20_000
    expected = Machine(module).run("main", [n])

    machine_fast = CompiledMachine(module)
    assert machine_fast.run("main", [n]) == expected  # warm + verify

    slow = _time_best_of(lambda: Machine(module).run("main", [n]))
    fast = _time_best_of(lambda: CompiledMachine(module).run("main", [n]))
    speedup = slow / fast
    print(f"\ninterpreter speedup (no tracers): {speedup:.2f}x")
    assert speedup >= 3.0

    slow_traced = _time_best_of(
        lambda: _run_with_edge_profile(Machine, module, n)
    )
    fast_traced = _time_best_of(
        lambda: _run_with_edge_profile(CompiledMachine, module, n)
    )
    traced_speedup = slow_traced / fast_traced
    print(f"interpreter speedup (EdgeProfile): {traced_speedup:.2f}x")
    assert traced_speedup >= 1.5


def _run_with_edge_profile(cls, module, n):
    machine = cls(module)
    machine.add_tracer(EdgeProfile())
    return machine.run("main", [n])


def test_noop_telemetry_overhead():
    """Observability acceptance: with no sink attached the telemetry
    layer must add less than 5% to compile_spt. The default path runs
    the NULL_TELEMETRY no-op singleton; an enabled-but-sinkless
    Telemetry must also stay within budget (the expensive per-event
    accounting hides behind ``detail=True``)."""
    from repro.core import Workload, compile_spt
    from repro.obs import Telemetry

    config = best_config()
    workload = Workload(entry="main", args=(4000,))

    def compile_null():
        return compile_spt(compile_minic(SOURCE), config, workload)

    def compile_observed():
        telemetry = Telemetry()
        result = compile_spt(
            compile_minic(SOURCE), config, workload, telemetry=telemetry
        )
        telemetry.close()
        return result

    compile_null(), compile_observed()  # warm caches before timing

    # Interleave the two variants so clock-speed drift and allocator
    # state affect both equally; best-of cancels the remaining noise.
    # GC is paused so collection pauses don't land on one variant.
    import gc

    baseline = observed = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(9):
            start = time.perf_counter()
            compile_null()
            baseline = min(baseline, time.perf_counter() - start)
            start = time.perf_counter()
            compile_observed()
            observed = min(observed, time.perf_counter() - start)
    finally:
        gc.enable()
    overhead = observed / baseline - 1.0
    print(
        f"\ntelemetry overhead: baseline={baseline * 1e3:.1f}ms"
        f" observed={observed * 1e3:.1f}ms ({overhead:+.1%})"
    )
    assert overhead < 0.05


def _random_cost_graph(n_vcs: int, n_ops: int) -> CostGraph:
    rng = bench_rng("cost-graph", n_vcs, n_ops)
    cg = CostGraph()
    vcs = [f"vc{i}" for i in range(n_vcs)]
    ops = [f"op{i}" for i in range(n_ops)]
    for vc in vcs:
        cg.add_pseudo(vc, rng.random())
    for op in ops:
        cg.add_node(op, rng.uniform(0.5, 4.0))
    for vc in vcs:
        for op in rng.sample(ops, k=min(4, n_ops)):
            cg.add_edge_from_pseudo(vc, op, rng.random())
    for i in range(n_ops):
        for j in rng.sample(range(i + 1, n_ops), k=min(3, n_ops - i - 1)):
            cg.add_edge(ops[i], ops[j], rng.random())
    return cg


def test_cost_model_evaluation(benchmark):
    cg = _random_cost_graph(n_vcs=20, n_ops=300)
    prefork = {f"vc{i}" for i in range(0, 20, 2)}
    cost = benchmark(lambda: misspeculation_cost(cg, prefork))
    assert cost >= 0


def test_depgraph_construction(benchmark):
    module = _module()
    func = module.function("main")
    nest = LoopNest.build(func)
    loop = nest.loops[0]

    graph = benchmark(lambda: build_dep_graph(module, func, loop))
    assert graph.nodes


def _benchsuite_cost_graphs():
    """Yield (bench, func, candidates, cost_graph) for every
    transformable benchsuite loop with a non-trivial candidate set."""
    config = best_config()
    for bench in SUITE:
        module = compile_minic(bench.source, name=bench.name)
        for func in module.functions.values():
            unroll_function(func, config)
        for func in module.functions.values():
            build_ssa(func)
            optimize(func)
        edge = EdgeProfile()
        machine = CompiledMachine(module)
        machine.add_tracer(edge)
        machine.run("main", [bench.train_n])
        for func in module.functions.values():
            nest = LoopNest.build(func)
            cfg = CFG.build(func)
            for loop in nest.loops:
                try:
                    check_transformable(func, loop, cfg)
                except TransformError:
                    continue
                graph = build_dep_graph(module, func, loop, edge_profile=edge)
                candidates = find_violation_candidates(graph)
                if not candidates or len(candidates) > 30:
                    continue
                cg = build_cost_graph(graph, candidates)
                yield bench, func, graph, candidates, cg


def test_partition_search_node_visits():
    """Tentpole acceptance: the incremental evaluator must visit at
    least 5x fewer cost-graph nodes than full recomputation on
    search-heavy benchsuite loops, with identical optimal partitions
    everywhere. Fully deterministic (counts, not timings)."""
    config = best_config()
    total_full = total_incr = 0
    heavy_full = heavy_incr = 0
    loops = 0
    for bench, func, graph, candidates, cg in _benchsuite_cost_graphs():
        full = find_optimal_partition(
            graph,
            config.with_overrides(incremental_cost=False),
            candidates=candidates,
            cost_graph=cg,
        )
        incr = find_optimal_partition(
            graph,
            config.with_overrides(incremental_cost=True),
            candidates=candidates,
            cost_graph=cg,
        )
        # Identical decisions: bitwise-equal cost, same prefork set.
        assert incr.cost == full.cost, (bench.name, func.name)
        assert [id(vc.instr) for vc in incr.prefork_vcs] == [
            id(vc.instr) for vc in full.prefork_vcs
        ]
        loops += 1
        total_full += full.cost_node_visits
        total_incr += incr.cost_node_visits
        if full.evaluations >= 10:
            heavy_full += full.cost_node_visits
            heavy_incr += incr.cost_node_visits
    assert loops >= 10  # the suite exercises a real population of loops
    total_ratio = total_full / max(total_incr, 1)
    heavy_ratio = heavy_full / max(heavy_incr, 1)
    print(
        f"\ncost-graph node visits: full={total_full} incremental={total_incr}"
        f" ({total_ratio:.2f}x overall, {heavy_ratio:.2f}x on"
        f" search-heavy loops)"
    )
    assert total_ratio >= 2.0
    assert heavy_ratio >= 5.0


# -- batch driver: cold vs warm cache, jobs=1 vs jobs=N ---------------------

_BATCH_TEMPLATE = """
global int data[256];
global int out[256];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 255];
        int a = x * MULT + i;
        int b = (a << 2) ^ (x >> 1);
        out[i & 255] = b & MASK;
        s += b & 31;
    }
    return s;
}
"""


def test_batch_driver_trajectory(tmp_path):
    """The batch-compilation trajectory: emits BENCH_batch.json with
    cold vs warm-cache wall time and jobs=1 vs jobs=N speedup, so
    future PRs can track both axes.  Only the warm-cache speedup is
    asserted (the parallel speedup depends on the runner's core count
    and is recorded, not gated)."""
    from repro.batch import run_batch

    corpus = tmp_path / "corpus"
    corpus.mkdir()
    for index in range(8):
        source = _BATCH_TEMPLATE.replace("MULT", str(3 + 2 * index))
        source = source.replace("MASK", str(1023 - index))
        (corpus / f"bench{index}.c").write_text(source)
    args = (3000,)
    jobs_n = min(4, os.cpu_count() or 1)

    def run(jobs, cache_dir):
        start = time.perf_counter()
        result = run_batch(
            [str(corpus)], args=args, jobs=jobs, cache_dir=str(cache_dir)
        )
        assert result.ok
        return time.perf_counter() - start, result

    cold_jobs1, _ = run(1, tmp_path / "cache-j1")
    cold_jobsn, _ = run(jobs_n, tmp_path / "cache-jn")
    warm_jobs1, warm_result = run(1, tmp_path / "cache-j1")

    hit_rate = warm_result.stats["cache"]["hit_rate"]
    trajectory = {
        "programs": 8,
        "args": list(args),
        "jobs_n": jobs_n,
        "cold_jobs1_seconds": round(cold_jobs1, 4),
        "cold_jobsn_seconds": round(cold_jobsn, 4),
        "warm_jobs1_seconds": round(warm_jobs1, 4),
        "parallel_speedup": round(cold_jobs1 / cold_jobsn, 3),
        "warm_cache_speedup": round(cold_jobs1 / warm_jobs1, 3),
        "warm_hit_rate": round(hit_rate, 4),
    }
    emit_json("BENCH_batch", trajectory)
    print(f"\nbatch trajectory: {trajectory}")

    assert hit_rate >= 0.9
    assert trajectory["warm_cache_speedup"] > 1.0
    assert trajectory["parallel_speedup"] > 0.0


def test_trace_interp_speedup():
    """Tentpole acceptance for the trace-compiled simulator: on the
    paper's evaluation workloads (the fig14-fig19 suite), hot-trace
    execution with the vectorized timing engine must produce bitwise-
    identical cycles/instructions to the block-compiled fast path with
    a per-op ``TimingTracer`` -- and be at least 5x faster in aggregate
    (target 10x).  Emits BENCH_interp.json so future PRs can track the
    trajectory per benchmark."""
    from repro.benchsuite.runner import _build_clean_module
    from repro.machine.timing import TimingModel, TimingTracer
    from repro.machine.vector_timing import VectorTimingEngine

    per_bench = {}
    total_base = 0.0
    total_trace = 0.0
    for bench in SUITE:
        module = _build_clean_module(bench)
        n = bench.eval_n

        def run_base():
            tracer = TimingTracer(TimingModel())
            machine = CompiledMachine(module)
            machine.add_tracer(tracer)
            machine.run("main", [n])
            return tracer

        def run_trace():
            engine = VectorTimingEngine(TimingModel())
            machine = CompiledMachine(module, trace=True, timing_engine=engine)
            machine.run("main", [n])
            engine.flush()
            return engine

        base = run_base()
        trace = run_trace()
        assert trace.ticks == base.ticks, bench.name
        assert trace.instructions == base.instructions, bench.name
        assert trace.loop_cycles == base.loop_cycles, bench.name

        # Interleave base/trace rounds so slow drift in machine load
        # hits both sides equally; best-of-N per side.
        base_s = trace_s = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            run_base()
            base_s = min(base_s, time.perf_counter() - start)
            start = time.perf_counter()
            run_trace()
            trace_s = min(trace_s, time.perf_counter() - start)
        total_base += base_s
        total_trace += trace_s
        per_bench[bench.name] = {
            "block_tracer_seconds": round(base_s, 4),
            "trace_engine_seconds": round(trace_s, 4),
            "speedup": round(base_s / trace_s, 2),
        }

    aggregate = total_base / total_trace
    payload = {
        "benchmarks": per_bench,
        "aggregate_speedup": round(aggregate, 2),
        "baseline": "CompiledMachine + per-op TimingTracer",
        "contender": "CompiledMachine(trace) + VectorTimingEngine",
    }
    emit_json("BENCH_interp", payload)
    print(f"\ntrace-interp trajectory: {payload}")
    assert aggregate >= 5.0
