"""Microbenchmarks of the framework's own hot paths: interpreter
throughput, cost-model evaluation, and dependence-graph construction.

These are pytest-benchmark timings (multiple rounds) rather than
one-shot experiment reproductions.
"""

import random

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.costgraph import CostGraph
from repro.core.costmodel import misspeculation_cost
from repro.frontend import compile_minic
from repro.ir import parse_module
from repro.profiling import Machine
from repro.ssa import build_ssa, optimize

SOURCE = """
global int data[512];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 511];
        int a = x * 3 + i;
        int b = (a << 2) ^ x;
        data[i & 511] = b & 1023;
        s += b & 31;
    }
    return s;
}
"""


def _module():
    module = compile_minic(SOURCE)
    for func in module.functions.values():
        build_ssa(func)
        optimize(func)
    return module


def test_interpreter_throughput(benchmark):
    module = _module()

    def run():
        return Machine(module).run("main", [2000])

    result = benchmark(run)
    assert isinstance(result, int)


def _random_cost_graph(n_vcs: int, n_ops: int, seed: int = 1234) -> CostGraph:
    rng = random.Random(seed)
    cg = CostGraph()
    vcs = [f"vc{i}" for i in range(n_vcs)]
    ops = [f"op{i}" for i in range(n_ops)]
    for vc in vcs:
        cg.add_pseudo(vc, rng.random())
    for op in ops:
        cg.add_node(op, rng.uniform(0.5, 4.0))
    for vc in vcs:
        for op in rng.sample(ops, k=min(4, n_ops)):
            cg.add_edge_from_pseudo(vc, op, rng.random())
    for i in range(n_ops):
        for j in rng.sample(range(i + 1, n_ops), k=min(3, n_ops - i - 1)):
            cg.add_edge(ops[i], ops[j], rng.random())
    return cg


def test_cost_model_evaluation(benchmark):
    cg = _random_cost_graph(n_vcs=20, n_ops=300)
    prefork = {f"vc{i}" for i in range(0, 20, 2)}
    cost = benchmark(lambda: misspeculation_cost(cg, prefork))
    assert cost >= 0


def test_depgraph_construction(benchmark):
    module = _module()
    func = module.function("main")
    nest = LoopNest.build(func)
    loop = nest.loops[0]

    graph = benchmark(lambda: build_dep_graph(module, func, loop))
    assert graph.nodes
