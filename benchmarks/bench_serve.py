"""Load test of the ``repro serve`` warm-worker daemon.

Quantifies the two numbers the serving tier exists for, against the
same golden corpus the differential battery diffs:

* **effective parallel speedup** -- wall time for N single-shot
  ``repro compile`` subprocesses (each paying the full interpreter
  import + pipeline warm-up) versus the same N programs compiled
  concurrently against a 4-worker daemon with cold caches;
* **warm-path latency** -- client-observed p50/p90/p99 over a few
  hundred requests served from the in-memory LRU tier.

Emits ``BENCH_serve.json`` (a trajectory entry, like every benchmark
artifact) and asserts the ROADMAP acceptance floors: speedup > 3x at
4 workers, warm p50 < 10 ms.
"""

import os
import subprocess
import sys
import threading
import time

from conftest import emit_json

from repro.serve.client import start_daemon

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC_DIR = os.path.join(REPO_ROOT, "src")
CORPUS_DIR = os.path.join(REPO_ROOT, "tests", "golden", "corpus")

CONFIG = "best"
ARGS = [96]
WORKERS = 4
WARM_REQUESTS = 240


def _daemon_env():
    python_path = SRC_DIR
    inherited = os.environ.get("PYTHONPATH")
    if inherited:
        python_path = python_path + os.pathsep + inherited
    return {
        "PYTHONPATH": python_path,
        "REPRO_FAULT": "",
        "REPRO_BATCH_CRASH_ON": "",
        "REPRO_SERVE_CRASH_ON": "",
        "REPRO_CACHE_DIR": "",
    }


def _corpus():
    out = []
    for name in sorted(os.listdir(CORPUS_DIR)):
        if not name.endswith(".c"):
            continue
        with open(os.path.join(CORPUS_DIR, name), encoding="utf-8") as f:
            out.append((name, f.read()))
    return out


def _params(name, source):
    return {
        "source": source,
        "path": name,
        "config": CONFIG,
        "args": list(ARGS),
    }


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def test_serve_load(tmp_path):
    corpus = _corpus()
    env = dict(os.environ)
    env.update(_daemon_env())

    # -- baseline: one cold CLI process per program, sequential --------
    cli_seconds = []
    for name, _source in corpus:
        started = time.perf_counter()
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "compile",
                os.path.join(CORPUS_DIR, name),
                "--config", CONFIG,
                "--args", ",".join(str(a) for a in ARGS),
            ],
            env=env,
            capture_output=True,
            timeout=300,
        )
        cli_seconds.append(time.perf_counter() - started)
        assert completed.returncode == 0, completed.stderr.decode()
    cli_total_s = sum(cli_seconds)

    with start_daemon(
        workers=WORKERS,
        cache_dir=str(tmp_path / "cache"),
        env=_daemon_env(),
    ) as daemon:
        # -- cold pass: all programs concurrently against 4 workers ----
        cold_wall_ms = [None] * len(corpus)
        failures = []

        def compile_one(index):
            name, source = corpus[index]
            client = daemon.new_client()
            try:
                started = time.perf_counter()
                response = client.compile(_params(name, source))
                cold_wall_ms[index] = (
                    time.perf_counter() - started
                ) * 1e3
                if response["entry"]["status"] != "ok":
                    failures.append(response["entry"])
                if response["serve"]["tier"] != "compute":
                    failures.append(response["serve"])
            finally:
                client.close()

        threads = [
            threading.Thread(target=compile_one, args=(index,))
            for index in range(len(corpus))
        ]
        cold_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        cold_total_s = time.perf_counter() - cold_started
        assert not failures, failures
        assert all(sample is not None for sample in cold_wall_ms)

        # -- warm pass: client-observed latency off the memory tier ----
        client = daemon.client
        warm_ms = []
        for request_index in range(WARM_REQUESTS):
            name, source = corpus[request_index % len(corpus)]
            started = time.perf_counter()
            response = client.compile(_params(name, source))
            warm_ms.append((time.perf_counter() - started) * 1e3)
            assert response["serve"]["tier"] == "memory"
        metrics = daemon.client.metrics()
        health = daemon.client.healthz()

    parallel_speedup = cli_total_s / cold_total_s
    warm_p50 = _percentile(warm_ms, 0.50)
    warm_p90 = _percentile(warm_ms, 0.90)
    warm_p99 = _percentile(warm_ms, 0.99)

    payload = {
        "schema": "repro-bench-serve/1",
        "workers": WORKERS,
        "programs": len(corpus),
        "config": CONFIG,
        "args": ARGS,
        "single_shot_cli": {
            "per_program_s": [round(s, 4) for s in cli_seconds],
            "total_s": round(cli_total_s, 4),
        },
        "served_cold": {
            "total_s": round(cold_total_s, 4),
            "per_request_ms": [round(ms, 3) for ms in cold_wall_ms],
        },
        "served_warm": {
            "requests": WARM_REQUESTS,
            "p50_ms": round(warm_p50, 3),
            "p90_ms": round(warm_p90, 3),
            "p99_ms": round(warm_p99, 3),
            "mean_ms": round(sum(warm_ms) / len(warm_ms), 3),
            "memory_hit_rate": health["memory_cache"]["hit_rate"],
        },
        "parallel_speedup": round(parallel_speedup, 3),
        "daemon": {
            "exit_code": daemon.returncode,
            "pool": health["pool"],
            "responses": metrics["counters"].get("serve.responses", 0),
        },
    }
    path = emit_json("BENCH_serve", payload)
    print(
        f"\nserve: {parallel_speedup:.1f}x parallel speedup over "
        f"single-shot CLI at {WORKERS} workers; warm p50 "
        f"{warm_p50:.2f} ms, p99 {warm_p99:.2f} ms -> {path}"
    )

    # ROADMAP acceptance floors for the serving tier.
    assert daemon.returncode == 0
    assert parallel_speedup > 3.0, payload
    assert warm_p50 < 10.0, payload
