"""Regression gating: check_regression unit behaviour plus the full
record -> ledger -> check loop, with a fault-injected 2x slowdown."""

import copy
import os

import pytest

from repro.obs import Ledger, make_record
from repro.perf import check_regression, diff_text, match_key, record_program
from repro.resilience.faults import FAULT_ENV_VAR, reset_fault_state

GOLDEN = os.path.join(
    os.path.dirname(__file__), "..", "golden", "corpus", "tiny_body.c"
)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


def _record(**overrides):
    base = dict(
        wall_s=1.0,
        cycles=5000,
        extra=None,
    )
    base.update(overrides)
    record = make_record(
        overrides.get("kind", "simulate"),
        {"name": "w", "sha256": "abc", "args": [8], "entry": "main"},
        "fp",
        wall_s=base["wall_s"],
        cycles=base["cycles"],
        degradations=overrides.get("degradations"),
    )
    record["counters"] = overrides.get(
        "counters", {"selection.selected": 2, "trace.events": 99}
    )
    record["phase_self_ms"] = overrides.get(
        "phase_self_ms", {"search": 100.0, "transform": 40.0}
    )
    return record


# -- unit behaviour ----------------------------------------------------------


def test_identical_records_pass():
    base = _record()
    report = check_regression([base], [copy.deepcopy(base)])
    assert report.ok
    assert report.compared == 1
    assert report.lines()[-1].startswith("perf check: PASS")


def test_cycle_drift_fails_even_across_hosts():
    base = _record()
    cur = copy.deepcopy(base)
    cur["cycles"] = 5001
    cur["host"] = "other-machine/x86_64/py3.11"
    report = check_regression([base], [cur])
    assert not report.ok
    assert any("cycles drifted" in f for f in report.failures)


def test_deterministic_counter_drift_fails_but_noisy_counter_does_not():
    base = _record()
    drift = copy.deepcopy(base)
    drift["counters"]["trace.events"] = 12345  # not a gated prefix
    assert check_regression([base], [drift]).ok
    drift["counters"]["selection.selected"] = 3
    report = check_regression([base], [drift])
    assert any("selection.selected" in f for f in report.failures)


def test_degradation_change_fails():
    base = _record()
    cur = copy.deepcopy(base)
    cur["degradations"] = [{"phase": "search", "rung": 1}]
    report = check_regression([base], [cur])
    assert any("degradation" in f for f in report.failures)


def test_wall_gate_needs_both_relative_and_absolute_growth():
    base = _record(phase_self_ms={"search": 100.0}, wall_s=0.140)
    # +200% but only +4 ms: under the absolute floor, not a regression.
    tiny = copy.deepcopy(base)
    tiny["phase_self_ms"] = {"search": 100.0}
    tiny["wall_s"] = 0.144
    assert check_regression([base], [tiny]).ok
    # 2x slowdown well past the floor: fails on wall and phase alike.
    slow = copy.deepcopy(base)
    slow["wall_s"] = 0.300
    slow["phase_self_ms"] = {"search": 210.0}
    report = check_regression([base], [slow])
    assert not report.ok
    assert any("wall time regressed" in f for f in report.failures)
    assert any("phase 'search'" in f for f in report.failures)


def test_cross_host_skips_wall_gate_unless_forced():
    base = _record(wall_s=0.1)
    slow = copy.deepcopy(base)
    slow["wall_s"] = 10.0
    slow["host"] = "other-machine/x86_64/py3.11"
    auto = check_regression([base], [slow])
    assert auto.ok
    assert any("host differs" in w for w in auto.warnings)
    forced = check_regression([base], [slow], gate_wall=True)
    assert not forced.ok


def test_unmatched_current_record_is_a_warning_not_a_failure():
    base = _record()
    stranger = copy.deepcopy(base)
    stranger["fingerprint"] = "some-other-config"
    report = check_regression([base], [stranger])
    assert report.ok
    assert report.compared == 0
    assert any("no baseline record" in w for w in report.warnings)


def test_empty_current_set_fails():
    assert not check_regression([_record()], []).ok


def test_match_key_distinguishes_args_and_fingerprint():
    base = _record()
    other = copy.deepcopy(base)
    other["workload"]["args"] = [9]
    assert match_key(base) != match_key(other)
    other = copy.deepcopy(base)
    other["fingerprint"] = "fp2"
    assert match_key(base) != match_key(other)


def test_diff_text_renders_metrics_and_host_note():
    base = _record()
    cur = copy.deepcopy(base)
    cur["host"] = "elsewhere/arm64/py3.12"
    text = diff_text(base, cur)
    assert "wall_s" in text
    assert "phase.search" in text
    assert "selection.selected" in text
    assert "different hosts" in text


# -- the full loop: record, ledger, check ------------------------------------


def test_recorded_identical_runs_pass(tmp_path):
    ledger = Ledger(tmp_path)
    for _ in range(2):
        record, result = record_program(GOLDEN, kind="compile")
        ledger.append(record)
        assert result is not None
    records = ledger.load()
    report = check_regression(records[:1], records[1:])
    assert report.compared == 1
    assert report.ok, report.failures


def test_injected_search_slowdown_fails_check(tmp_path, monkeypatch):
    """The acceptance scenario: a REPRO_FAULT-injected slowdown of the
    search phase must trip the same-host wall gate."""
    baseline, _ = record_program(GOLDEN, kind="compile")
    monkeypatch.setenv(FAULT_ENV_VAR, "search:slow:0.2")
    reset_fault_state()
    slowed, _ = record_program(GOLDEN, kind="compile")
    report = check_regression([baseline], [slowed], floor_ms=25.0)
    assert not report.ok
    assert any("phase 'search'" in f for f in report.failures), report.failures


def test_simulate_record_carries_cycles():
    record, result = record_program(GOLDEN, kind="simulate", args=[64])
    assert record["kind"] == "simulate"
    if result.spt_loops:
        assert record["cycles"] is not None
        assert "program_speedup" in record["extra"]
    assert record["workload"]["args"] == [64]
    assert record["phase_self_ms"], "observing telemetry must fill phases"
    assert any(
        name.startswith(("selection.", "partition.", "transform."))
        for name in record["counters"]
    )


def test_record_program_rejects_unknown_kind():
    with pytest.raises(ValueError):
        record_program(GOLDEN, kind="bench")
