// repro-fuzz reproducer
// oracle: spt
// seed: 0
// iteration: 2
// detail: [stress] main:for_head3: misspeculation replay disagrees at round 0: library (131.9, 177) vs independent (129.55, 173) -- sticky taint: _replay_speculative never cleared tainted_regs on a clean redefinition
global int C[128];

int main(int n) {
    int s0 = 3;
    for (int i6 = 0; i6 < 5; i6++) {
        for (int i7 = 0; i7 < 4; i7++) {
            s0 = (0) & 65535;
        }
        C[(s0) & 127] = (0) & 65535;
    }
    return (s0) & 1048575;
}
