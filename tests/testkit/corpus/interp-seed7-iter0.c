// repro-fuzz reproducer
// oracle: interp
// seed: 7
// iteration: 0
// detail: n=33: result mismatch (reference 0, compiled 1)
int main(int n) {
    return (0) & 1048575;
}
