// repro-fuzz reproducer
// oracle: cost
// seed: 0
// iteration: 0
// detail: main:for_head step 0: cost 0.0 (full) != 1.0 (incremental), |prefork|=1
int main(int n) {
    for (int i2 = 0; i2 < 0; i2++) {
    }
    return (0) & 1048575;
}
