// repro-fuzz reproducer
// oracle: spt
// seed: 3
// iteration: 0
// detail: [stress] main:for_head: misspeculation replay disagrees at round 0: library (0.0, 0) vs independent (1.0499999999999998, 4)
int main(int n) {
    for (int i2 = 0; i2 < n; i2++) {
    }
    return (0) & 1048575;
}
