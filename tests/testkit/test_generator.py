"""Generator well-formedness: every program compiles, runs, halts."""

import random

from repro.frontend import compile_minic
from repro.profiling.interp import run_module
from repro.testkit import derive_rng, generate_program, random_gen_config
from repro.testkit.generator import ForStmt, GenConfig

SEEDS = range(25)


def _spec_for(seed):
    rng = derive_rng("test-generator", seed)
    return generate_program(rng, random_gen_config(rng))


def test_same_seed_same_source():
    for seed in SEEDS:
        assert _spec_for(seed).source() == _spec_for(seed).source()


def test_programs_compile_run_and_halt():
    for seed in SEEDS:
        source = _spec_for(seed).source()
        module = compile_minic(source)
        for n in (0, 7, 150):
            result, machine = run_module(module, args=[n], fuel=4_000_000)
            assert isinstance(result, int)
            assert 0 <= result <= 1048575, source


def test_both_interpreters_accept_generated_programs():
    for seed in list(SEEDS)[:8]:
        source = _spec_for(seed).source()
        ref, _ = run_module(compile_minic(source), args=[33], fuel=4_000_000)
        fast, _ = run_module(
            compile_minic(source), args=[33], fuel=4_000_000, fast=True
        )
        assert ref == fast


def test_every_program_has_a_for_loop():
    def has_for(stmts):
        return any(
            isinstance(s, ForStmt)
            or (hasattr(s, "body") and has_for(s.body))
            or (hasattr(s, "then") and has_for(s.then + s.orelse))
            for s in stmts
        )

    for seed in SEEDS:
        assert has_for(_spec_for(seed).body)


def test_gen_config_rejects_non_power_of_two_arrays():
    import pytest

    with pytest.raises(ValueError):
        GenConfig(array_size=48)


def test_clone_is_independent():
    spec = _spec_for(0)
    clone = spec.clone()
    clone.body.clear()
    clone.scalars.clear()
    assert spec.body and spec.scalars
    assert spec.source() != clone.source()


def test_knobs_shape_output():
    """Size knobs actually stretch/shrink the program."""
    rng = random.Random(3)
    small = generate_program(
        random.Random(3),
        GenConfig(max_depth=1, max_stmts=1, n_scalars=2, n_arrays=1,
                  allow_while=False, allow_calls=False, allow_irregular=False),
    )
    big = generate_program(
        rng,
        GenConfig(max_depth=3, max_stmts=6, n_scalars=6, n_arrays=3),
    )
    assert len(big.source()) > len(small.source())
    assert "helper" not in small.source()
