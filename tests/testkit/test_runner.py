"""Campaign driver tests: determinism, telemetry, failure handling."""

from repro.obs.telemetry import Telemetry
from repro.testkit import run_campaign
from repro.testkit.generator import GenConfig

SMALL = GenConfig(max_depth=1, max_stmts=2, n_scalars=2, n_arrays=1,
                  array_size=32, max_outer_trip=8)


def test_clean_campaign_reports_all_checked():
    report = run_campaign(seed=11, iterations=4, gen_config=SMALL)
    assert report.ok
    assert report.checked == {name: 4 for name in report.oracles}
    lines = report.summary_lines()
    assert "seed=11" in lines[0]
    assert all("0 failed" in line for line in lines[1:])


def test_campaign_is_deterministic(monkeypatch):
    def snapshot(report):
        return [
            (f.oracle, f.iteration, f.detail, f.spec.source())
            for f in report.failures
        ]

    a = run_campaign(seed=3, iterations=3, gen_config=SMALL)
    b = run_campaign(seed=3, iterations=3, gen_config=SMALL)
    assert snapshot(a) == snapshot(b)
    assert a.checked == b.checked


def test_unknown_oracle_rejected():
    import pytest

    with pytest.raises(ValueError, match="unknown oracle"):
        run_campaign(seed=0, iterations=1, oracles=["bogus"])


def test_campaign_telemetry_counters():
    telemetry = Telemetry(sinks=[])
    run_campaign(
        seed=0, iterations=2, oracles=["cost"], gen_config=SMALL,
        telemetry=telemetry,
    )
    assert telemetry.counters.get("fuzz.cost.checked") == 2
    assert "fuzz.cost.failed" not in telemetry.counters


def test_failure_is_caught_shrunk_and_replayable(monkeypatch):
    """Sabotage one oracle; the campaign must catch it, shrink it, and
    the shrunk reproducer must still fail the same oracle."""
    from repro.core.costmodel import IncrementalCostEvaluator

    original = IncrementalCostEvaluator._total
    monkeypatch.setattr(
        IncrementalCostEvaluator,
        "_total",
        lambda self, v: original(self, v) + 1.0,
    )
    report = run_campaign(seed=0, iterations=20, oracles=["cost"])
    assert not report.ok
    failure = report.failures[0]
    assert failure.oracle == "cost"
    assert failure.shrunk is not None
    assert failure.shrunk_detail is not None  # still fails after shrinking
    assert len(failure.shrunk.source()) <= len(failure.spec.source())
    # The campaign stopped at the first failure (max_failures=1).
    assert len(report.failures) == 1


def test_max_failures_zero_runs_full_campaign(monkeypatch):
    from repro.core.costmodel import IncrementalCostEvaluator

    original = IncrementalCostEvaluator._total
    monkeypatch.setattr(
        IncrementalCostEvaluator,
        "_total",
        lambda self, v: original(self, v) + 1.0,
    )
    report = run_campaign(
        seed=0, iterations=3, oracles=["cost"], max_failures=0, shrink=False
    )
    assert report.checked["cost"] == 3
    assert len(report.failures) >= 1
    assert all(f.shrunk is None for f in report.failures)
