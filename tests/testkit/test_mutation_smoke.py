"""Mutation smoke test (acceptance criterion).

Injects an off-by-one into the incremental cost evaluator's total --
the classic silent cost-model regression -- and requires the fuzzing
subsystem to (a) catch it within a small fixed budget and (b) shrink
the failing program to a reproducer whose loop body is at most 10 IR
instructions.  This is the end-to-end guarantee that a future cost-path
PR breaking bitwise equality cannot land quietly.
"""

import pytest

from repro.analysis.loops import LoopNest
from repro.core.costmodel import IncrementalCostEvaluator
from repro.frontend import compile_minic
from repro.ssa.construct import build_ssa
from repro.ssa.optimize import optimize
from repro.testkit import run_campaign


@pytest.fixture
def cost_off_by_one(monkeypatch):
    original = IncrementalCostEvaluator._total
    monkeypatch.setattr(
        IncrementalCostEvaluator,
        "_total",
        lambda self, v: original(self, v) + 1.0,
    )


def _loop_body_sizes(source):
    """IR instruction count of every loop body, after SSA + cleanup."""
    module = compile_minic(source)
    sizes = []
    for name in sorted(module.functions):
        func = module.functions[name]
        build_ssa(func)
        optimize(func)
        for loop in LoopNest.build(func).loops:
            sizes.append(
                sum(len(block.instrs) for block in loop.blocks(func))
            )
    return sizes


def test_cost_off_by_one_is_caught_and_shrunk_small(cost_off_by_one):
    report = run_campaign(seed=0, iterations=50, oracles=["cost"])
    assert report.failures, "injected cost off-by-one was not caught"
    failure = report.failures[0]
    assert failure.oracle == "cost"
    assert failure.shrunk is not None
    assert failure.shrunk_detail is not None, "shrunk program no longer fails"

    sizes = _loop_body_sizes(failure.shrunk.source())
    assert sizes, "shrunk reproducer lost its loop"
    assert min(sizes) <= 10, (
        f"reproducer loop bodies too large: {sizes}\n"
        f"{failure.shrunk.source()}"
    )


def test_campaign_is_clean_without_the_mutation():
    report = run_campaign(seed=0, iterations=5, oracles=["cost"])
    assert report.ok, [f.detail for f in report.failures]
