"""Corpus round-trip tests plus replay of the checked-in reproducers."""

import os

import pytest

from repro.testkit import (
    FuzzFailure,
    derive_rng,
    generate_program,
    load_corpus,
    random_gen_config,
    replay_entry,
    run_campaign,
    save_reproducer,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def _spec_for(seed):
    rng = derive_rng("test-corpus", seed)
    return generate_program(rng, random_gen_config(rng))


def test_save_load_roundtrip(tmp_path):
    spec = _spec_for(0)
    failure = FuzzFailure(
        seed=99, iteration=4, oracle="interp",
        detail="synthetic detail for the round-trip", spec=spec,
    )
    path = save_reproducer(str(tmp_path), failure)
    entries = load_corpus(str(tmp_path))
    assert len(entries) == 1
    entry = entries[0]
    assert entry.path == path
    assert (entry.oracle, entry.seed, entry.iteration) == ("interp", 99, 4)
    assert entry.source == spec.source()
    assert "round-trip" in entry.detail


def test_save_prefers_minimized_program(tmp_path):
    spec = _spec_for(1)
    shrunk = spec.clone()
    shrunk.body = shrunk.body[:1]
    failure = FuzzFailure(
        seed=1, iteration=0, oracle="cost", detail="d", spec=spec,
        shrunk=shrunk, shrunk_detail="d",
    )
    save_reproducer(str(tmp_path), failure)
    (entry,) = load_corpus(str(tmp_path))
    assert entry.source == shrunk.source()


def test_load_ignores_non_reproducer_files(tmp_path):
    (tmp_path / "README.md").write_text("not a reproducer")
    (tmp_path / "notes.c").write_text("int main(int n) { return 0; }")
    assert load_corpus(str(tmp_path)) == []


def test_load_missing_directory_is_empty():
    assert load_corpus("/nonexistent/corpus/dir") == []


def test_failure_written_by_campaign_replays(tmp_path, monkeypatch):
    """End-to-end: a campaign failure saved to the corpus replays its
    oracle byte-identically -- failing while the bug exists, passing
    once it is fixed."""
    from repro.core.costmodel import IncrementalCostEvaluator

    original = IncrementalCostEvaluator._total
    monkeypatch.setattr(
        IncrementalCostEvaluator,
        "_total",
        lambda self, v: original(self, v) + 1.0,
    )
    report = run_campaign(seed=0, iterations=20, oracles=["cost"])
    assert report.failures
    save_reproducer(str(tmp_path), report.failures[0])
    (entry,) = load_corpus(str(tmp_path))
    assert replay_entry(entry) is not None  # bug still present: fails

    monkeypatch.setattr(IncrementalCostEvaluator, "_total", original)
    assert replay_entry(entry) is None  # bug fixed: corpus entry passes


# -- the checked-in regression corpus ---------------------------------------

_ENTRIES = load_corpus(CORPUS_DIR)


def test_checked_in_corpus_is_nonempty():
    assert _ENTRIES, f"no reproducers under {CORPUS_DIR}"


@pytest.mark.parametrize("entry", _ENTRIES, ids=lambda e: e.name)
def test_corpus_reproducer_stays_fixed(entry):
    detail = replay_entry(entry)
    assert detail is None, (
        f"corpus regression resurfaced in {entry.path}: {detail}"
    )
