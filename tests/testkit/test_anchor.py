"""Snapshot anchors and the ``checkpoint`` oracle."""

import json
import os

import pytest

from repro.checkpoint.state import CheckpointError
from repro.testkit import (
    capture_anchor,
    derive_rng,
    generate_program,
    random_gen_config,
    replay_anchor,
    run_campaign,
)
from repro.testkit.anchor import SNAPSHOT_SCHEMA, anchor_workload
from repro.testkit.corpus import load_corpus, replay_entry, save_reproducer
from repro.testkit.oracles import run_oracle

SOURCE = """
global int data[64];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 63] + i * 3;
        data[i & 63] = x & 255;
        s += x & 7;
    }
    return s;
}
"""


def _spec(seed):
    rng = derive_rng("anchor-test", seed)
    return generate_program(rng, random_gen_config(rng))


def test_capture_then_replay_passes():
    anchor = capture_anchor(SOURCE, 60)
    assert anchor is not None
    assert anchor["schema"] == SNAPSHOT_SCHEMA
    assert anchor["executed"] >= 0
    assert replay_anchor(SOURCE, anchor) is None


def test_trivial_program_anchors_at_entry():
    """Even a straight-line program anchors at the entry boundary."""
    anchor = capture_anchor("int main(int n) { return n; }", 3)
    assert anchor is not None and anchor["executed"] == 0
    assert replay_anchor("int main(int n) { return n; }", anchor) is None


def test_replay_rejects_foreign_documents():
    with pytest.raises(CheckpointError):
        replay_anchor(SOURCE, {"schema": "something-else/1"})
    with pytest.raises(CheckpointError):
        replay_anchor(SOURCE, {"schema": SNAPSHOT_SCHEMA, "state": None})


def test_replay_rejects_edited_source():
    anchor = capture_anchor(SOURCE, 60)
    edited = SOURCE.replace("i * 3", "i * 5")
    with pytest.raises(CheckpointError):
        replay_anchor(edited, anchor)


def test_replay_detects_resume_divergence(monkeypatch):
    """A restore that silently skews state must be reported, not
    absorbed."""
    from repro.profiling.interp import Machine

    anchor = capture_anchor(SOURCE, 60)
    original = Machine.restore_state

    def skewed(self, state):
        frame = original(self, state)
        self.executed += 1
        return frame

    monkeypatch.setattr(Machine, "restore_state", skewed)
    detail = replay_anchor(SOURCE, anchor)
    assert detail is not None and "executed" in detail


def test_checkpoint_oracle_passes_on_generated_programs():
    for seed in range(3):
        spec = _spec(seed)
        assert (
            run_oracle(
                "checkpoint", spec,
                derive_rng("anchor-test", seed, "checkpoint"),
            )
            is None
        )


def test_checkpoint_oracle_catches_skewed_restore(monkeypatch):
    from repro.profiling.interp import Machine

    original = Machine.restore_state

    def skewed(self, state):
        frame = original(self, state)
        self.executed -= 1
        return frame

    monkeypatch.setattr(Machine, "restore_state", skewed)
    caught = 0
    for seed in range(4):
        detail = run_oracle(
            "checkpoint", _spec(seed),
            derive_rng("anchor-test", seed, "checkpoint"),
        )
        if detail is not None:
            caught += 1
    assert caught > 0


def test_campaign_failures_are_anchored_and_sidecars_roundtrip(
    tmp_path, monkeypatch
):
    """A failure found by the campaign carries a snapshot, the corpus
    writes it as a sidecar, and replay uses it."""
    import repro.testkit.oracles as oracles_mod

    monkeypatch.setitem(
        oracles_mod.ORACLES, "cost", lambda spec, rng: "synthetic failure"
    )
    report = run_campaign(seed=3, iterations=5, oracles=["cost"],
                          max_failures=1)
    (failure,) = report.failures
    assert failure.snapshot is not None
    assert failure.snapshot["schema"] == SNAPSHOT_SCHEMA

    path = save_reproducer(str(tmp_path), failure)
    sidecar = os.path.splitext(path)[0] + ".snapshot.json"
    assert os.path.exists(sidecar)
    assert json.load(open(sidecar))["schema"] == SNAPSHOT_SCHEMA

    monkeypatch.undo()  # un-sabotage: the "bug" is now fixed
    (entry,) = load_corpus(str(tmp_path))
    assert entry.snapshot is not None
    assert replay_entry(entry) is None


def test_corrupt_sidecar_degrades_to_cold_replay(tmp_path, monkeypatch):
    import repro.testkit.oracles as oracles_mod

    monkeypatch.setitem(
        oracles_mod.ORACLES, "cost", lambda spec, rng: "synthetic failure"
    )
    report = run_campaign(seed=3, iterations=5, oracles=["cost"],
                          max_failures=1)
    path = save_reproducer(str(tmp_path), report.failures[0])
    monkeypatch.undo()

    sidecar = os.path.splitext(path)[0] + ".snapshot.json"
    with open(sidecar, "w") as handle:
        handle.write("{torn")
    (entry,) = load_corpus(str(tmp_path))
    assert entry.snapshot is None  # corrupt sidecar ignored
    assert replay_entry(entry) is None  # ...and replay still works


def test_checked_in_corpus_sidecars_apply():
    """Every checked-in reproducer with a sidecar must replay from it."""
    corpus_dir = os.path.join(os.path.dirname(__file__), "corpus")
    entries = load_corpus(corpus_dir)
    with_anchor = [e for e in entries if e.snapshot is not None]
    assert with_anchor, "checked-in corpus should carry snapshot sidecars"
    for entry in with_anchor:
        assert replay_anchor(entry.source, entry.snapshot) is None, entry.name
