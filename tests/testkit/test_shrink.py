"""Structural delta-debugging shrinker tests."""

from repro.frontend import compile_minic
from repro.profiling.interp import run_module
from repro.testkit import derive_rng, generate_program, random_gen_config, shrink_program
from repro.testkit.shrink import _stmt_count


def _spec_for(seed):
    rng = derive_rng("test-shrink", seed)
    return generate_program(rng, random_gen_config(rng))


def _runs_clean(spec):
    module = compile_minic(spec.source())
    run_module(module, args=[10], fuel=4_000_000)
    return True


def test_shrink_to_trivial_when_predicate_is_always_true():
    """With a vacuous predicate the shrinker should strip nearly
    everything -- and every intermediate candidate must stay a valid,
    terminating program (the predicate compiles and runs each one)."""
    for seed in (0, 1, 2):
        spec = _spec_for(seed)
        shrunk = shrink_program(spec, _runs_clean)
        assert _stmt_count(shrunk) <= 2
        assert len(shrunk.source()) < len(spec.source())
        assert _runs_clean(shrunk)


def test_shrink_preserves_targeted_property():
    """Minimizing while a specific statement shape must survive."""
    spec = _spec_for(3)

    def still_stores(candidate):
        _runs_clean(candidate)  # must remain executable
        return "] = " in candidate.source()

    assert still_stores(spec)
    shrunk = shrink_program(spec, still_stores)
    assert still_stores(shrunk)
    assert len(shrunk.source()) <= len(spec.source())


def test_shrink_returns_input_when_predicate_fails_immediately():
    spec = _spec_for(4)
    shrunk = shrink_program(spec, lambda s: False)
    assert shrunk is spec


def test_shrink_never_mutates_input():
    spec = _spec_for(5)
    before = spec.source()
    shrink_program(spec, _runs_clean)
    assert spec.source() == before


def test_shrink_is_deterministic():
    spec = _spec_for(6)
    a = shrink_program(spec, _runs_clean).source()
    b = shrink_program(spec, _runs_clean).source()
    assert a == b
