"""``repro fuzz`` CLI tests (driving main() directly; stdout via capsys)."""

import json

import pytest

from repro.cli import main
from repro.testkit import load_corpus


def test_fuzz_clean_run(capsys):
    assert main(["fuzz", "--seed", "0", "--iterations", "2"]) == 0
    out = capsys.readouterr().out
    assert "fuzz: seed=0 iterations=2" in out
    assert "cost: 2 checked, 0 failed" in out
    assert "spt: 2 checked, 0 failed" in out


def test_fuzz_oracle_subset(capsys):
    assert main(["fuzz", "--seed", "1", "--iterations", "1",
                 "--oracle", "interp", "--oracle", "cost"]) == 0
    out = capsys.readouterr().out
    assert "oracles=cost,interp" in out or "oracles=interp,cost" in out
    assert "partition" not in out


def test_fuzz_rejects_unknown_oracle(capsys):
    assert main(["fuzz", "--oracle", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown oracle" in err


def test_fuzz_failure_writes_corpus_and_exits_nonzero(
    tmp_path, capsys, monkeypatch
):
    from repro.core.costmodel import IncrementalCostEvaluator

    original = IncrementalCostEvaluator._total
    monkeypatch.setattr(
        IncrementalCostEvaluator,
        "_total",
        lambda self, v: original(self, v) + 1.0,
    )
    corpus = tmp_path / "corpus"
    code = main([
        "fuzz", "--seed", "0", "--iterations", "20",
        "--oracle", "cost", "--corpus-dir", str(corpus),
        "--skip-corpus-replay",
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "FAILURE" in out
    entries = load_corpus(str(corpus))
    assert len(entries) == 1
    assert entries[0].oracle == "cost"


def test_fuzz_replays_corpus_before_campaign(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "interp-seed5-iter0.c").write_text(
        "// repro-fuzz reproducer\n"
        "// oracle: interp\n"
        "// seed: 5\n"
        "// iteration: 0\n"
        "\n"
        "int main(int n) { return n & 7; }\n"
    )
    code = main(["fuzz", "--seed", "5", "--iterations", "1",
                 "--oracle", "interp", "--corpus-dir", str(corpus)])
    assert code == 0
    out = capsys.readouterr().out
    assert "corpus: 1 reproducer(s) replayed" in out


def test_fuzz_telemetry_counters(tmp_path, capsys):
    log = tmp_path / "fuzz.jsonl"
    assert main(["fuzz", "--seed", "0", "--iterations", "2",
                 "--oracle", "cost", "--log-out", str(log)]) == 0
    capsys.readouterr()
    events = [json.loads(line) for line in log.read_text().splitlines()]
    counters = [e for e in events if e.get("type") == "counter"]
    assert any(
        e.get("name") == "fuzz.cost.checked" and e.get("value") == 2
        for e in counters
    ), counters


def test_fuzz_inline_reproducer_without_corpus_dir(capsys, monkeypatch):
    from repro.profiling import compiled

    original = compiled.CompiledMachine.run

    def broken(self, func_name, args=()):
        return original(self, func_name, args) + 1

    monkeypatch.setattr(compiled.CompiledMachine, "run", broken)
    code = main(["fuzz", "--seed", "0", "--iterations", "5",
                 "--oracle", "interp", "--no-shrink"])
    assert code == 1
    out = capsys.readouterr().out
    assert "FAILURE" in out
    assert "int main(int n)" in out  # program printed inline
