"""Oracle battery behaviour on clean and deliberately broken inputs."""

import pytest

from repro.testkit import ORACLE_NAMES, derive_rng, generate_program, random_gen_config
from repro.testkit.oracles import run_oracle


def _spec_for(seed):
    rng = derive_rng("test-oracles", seed)
    return generate_program(rng, random_gen_config(rng))


@pytest.mark.parametrize("oracle", ORACLE_NAMES)
def test_oracles_pass_on_generated_programs(oracle):
    for seed in range(6):
        spec = _spec_for(seed)
        detail = run_oracle(oracle, spec, derive_rng("test-oracles", seed, oracle))
        assert detail is None, f"seed {seed}: {detail}"


@pytest.mark.parametrize("oracle", ORACLE_NAMES)
def test_oracles_accept_raw_source(oracle):
    source = _spec_for(0).source()
    detail = run_oracle(oracle, source, derive_rng("raw", oracle))
    assert detail is None, detail


def test_oracle_rng_determines_verdict_inputs():
    """The same (program, rng seed) pair replays byte-identically --
    the property the shrinking predicate and corpus replay depend on."""
    spec = _spec_for(1)
    for oracle in ORACLE_NAMES:
        a = run_oracle(oracle, spec, derive_rng("replay", oracle))
        b = run_oracle(oracle, spec, derive_rng("replay", oracle))
        assert a == b


def test_interp_oracle_catches_result_divergence(monkeypatch):
    """Sabotage the compiled fast path and the interp oracle must see it."""
    from repro.profiling import compiled

    original = compiled.CompiledMachine.run

    def broken(self, func_name, args=()):
        return original(self, func_name, args) + 1

    monkeypatch.setattr(compiled.CompiledMachine, "run", broken)
    detail = run_oracle("interp", _spec_for(2), derive_rng("broken-interp"))
    assert detail is not None
    assert "result mismatch" in detail


def test_cost_oracle_catches_off_by_one(monkeypatch):
    from repro.core.costmodel import IncrementalCostEvaluator

    original = IncrementalCostEvaluator._total
    monkeypatch.setattr(
        IncrementalCostEvaluator,
        "_total",
        lambda self, v: original(self, v) + 1.0,
    )
    assert (
        run_oracle("cost", _spec_for(3), derive_rng("broken-cost")) is not None
    )


def test_partition_oracle_catches_wrong_optimum(monkeypatch):
    """Sabotage branch-and-bound into claiming a worse cost."""
    from repro.core import partition as partition_mod
    from repro.testkit import oracles as oracles_mod

    original = partition_mod.find_optimal_partition

    def pessimized(graph, config=None, **kwargs):
        result = original(graph, config, **kwargs)
        if result.cost not in (float("inf"),):
            result.cost += 0.5
        return result

    monkeypatch.setattr(oracles_mod, "find_optimal_partition", pessimized)
    found = any(
        run_oracle("partition", _spec_for(seed), derive_rng("broken-bb", seed))
        is not None
        for seed in range(8)
    )
    assert found, "no generated program exercised the partition search"


def test_spt_oracle_catches_replay_rule_change(monkeypatch):
    """Weaken the library's misspeculation rule; the independent
    reimplementation must disagree on some generated program."""
    from repro.machine import spt_sim
    from repro.testkit import oracles as oracles_mod

    def lenient(spec, post_reg, post_mem):
        return 0.0, 0  # pretend speculation never misses

    monkeypatch.setattr(oracles_mod, "_replay_speculative", lenient)
    found = any(
        run_oracle("spt", _spec_for(seed), derive_rng("broken-spt", seed))
        is not None
        for seed in range(10)
    )
    assert found, "no generated program triggered a misspeculation"
