"""Compile-phase checkpoints: a restored partition search must be
indistinguishable from a fresh one, and the resilience ladder must
reuse work across rungs."""

import json
import os

import pytest

from repro.checkpoint.phases import PhaseCheckpointStore
from repro.core.config import best_config
from repro.core.pipeline import Workload, compile_spt
from repro.frontend import compile_minic
from repro.obs.telemetry import Telemetry
from repro.resilience.faults import reset_fault_state

SOURCE = """
global int data[512];
global int out[512];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 511];
        int a = x * 3 + i;
        int b = (a << 2) ^ x;
        out[i & 511] = b & 1023;
        s += b & 31;
    }
    return s;
}
"""


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


def _loop_records(result):
    return json.dumps(result.loop_records(), sort_keys=True)


def test_restored_search_is_byte_identical_to_fresh(tmp_path):
    reference = compile_spt(
        compile_minic(SOURCE), best_config(), Workload(args=(48,))
    )

    store = PhaseCheckpointStore(str(tmp_path))
    saved = compile_spt(
        compile_minic(SOURCE), best_config(), Workload(args=(48,)),
        phase_checkpoints=store,
    )
    assert store.stats.saves > 0 and store.stats.restores == 0

    restored = compile_spt(
        compile_minic(SOURCE), best_config(), Workload(args=(48,)),
        phase_checkpoints=store,
    )
    assert store.stats.restores == store.stats.saves
    assert (
        _loop_records(reference)
        == _loop_records(saved)
        == _loop_records(restored)
    )


def test_corrupt_phase_checkpoint_misses_and_recovers(tmp_path):
    store = PhaseCheckpointStore(str(tmp_path))
    compile_spt(
        compile_minic(SOURCE), best_config(), Workload(args=(48,)),
        phase_checkpoints=store,
    )
    # Corrupt every stored document.
    version_dir = os.path.join(store.directory, "v1")
    corrupted = 0
    for root, _dirs, files in os.walk(version_dir):
        for name in files:
            with open(os.path.join(root, name), "w") as handle:
                handle.write("{not json")
            corrupted += 1
    assert corrupted > 0

    fresh = PhaseCheckpointStore(str(tmp_path))
    result = compile_spt(
        compile_minic(SOURCE), best_config(), Workload(args=(48,)),
        phase_checkpoints=fresh,
    )
    assert fresh.stats.corrupt == corrupted  # every load degraded to a miss
    assert result.spt_loops  # ...and the compile just searched again


def test_save_fault_never_fails_the_compile(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT", "checkpoint.save:raise")
    store = PhaseCheckpointStore(str(tmp_path))
    result = compile_spt(
        compile_minic(SOURCE), best_config(), Workload(args=(48,)),
        phase_checkpoints=store,
    )
    assert result.spt_loops
    assert store.stats.saves == 0 and store.stats.save_failures > 0


def test_ladder_reuses_depgraph_across_rungs(monkeypatch):
    """A search fault on the full rung must not rebuild the dependence
    graph on the retry rung."""
    monkeypatch.setenv("REPRO_FAULT", "search:raise:1")
    reset_fault_state()
    telemetry = Telemetry()
    result = compile_spt(
        compile_minic(SOURCE), best_config(), Workload(args=(48,)),
        telemetry=telemetry,
    )
    telemetry.close()
    assert result.spt_loops  # recovered on a later rung
    assert telemetry.counters.get("resilience.ladder.graph_reused", 0) > 0
