"""Snapshot/restore round-trip properties.

The checkpoint contract is *bitwise* fidelity: ``restore(snapshot(s))``
re-snapshots to the same document, and a run resumed from any boundary
snapshot finishes identically (result, memory, fuel odometer, cycles,
per-loop statistics) to the uninterrupted run -- including after the
snapshot takes a trip through JSON, exactly as the on-disk store does.
"""

import json

import pytest

from repro.checkpoint import (
    InstrIndex,
    restore_simulation,
    snapshot_simulation,
)
from repro.core.config import best_config
from repro.core.pipeline import Workload, compile_spt
from repro.frontend import compile_minic
from repro.perf.runner import build_simulation, finalize_simulation
from repro.profiling.interp import Machine

SOURCE = """
global int data[512];
global int out[512];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 511];
        int a = x * 3 + i;
        int b = (a << 2) ^ x;
        out[i & 511] = b & 1023;
        s += b & 31;
    }
    return s;
}
"""

FUEL = 4_000_000


def _capture_machine_snapshots(source, n, every=64):
    module = compile_minic(source)
    machine = Machine(module, fuel=FUEL)
    snapshots = []
    last = [-every]

    def hook(m, frame):
        if m.executed - last[0] < every:
            return
        last[0] = m.executed
        snapshots.append(m.snapshot_state(frame))

    machine.checkpoint_hook = hook
    result = machine.run("main", [n])
    return module, machine, result, snapshots


def test_restore_of_snapshot_resnapshots_identically():
    """restore(snapshot(s)) == s, through a JSON round trip."""
    _, _, _, snapshots = _capture_machine_snapshots(SOURCE, 40)
    assert snapshots
    for state in snapshots:
        wire = json.loads(json.dumps(state))
        machine = Machine(compile_minic(SOURCE), fuel=FUEL)
        frame = machine.restore_state(wire)
        assert machine.snapshot_state(frame) == state


def test_resume_from_every_boundary_is_bitwise_identical():
    _, reference, result, snapshots = _capture_machine_snapshots(SOURCE, 40)
    assert snapshots
    for state in snapshots:
        machine = Machine(compile_minic(SOURCE), fuel=FUEL)
        frame = machine.restore_state(json.loads(json.dumps(state)))
        assert machine.resume_frame(frame) == result
        assert machine.executed == reference.executed
        assert machine.memory == reference.memory


def _outcome_tuple(outcome):
    return (
        outcome.result,
        outcome.seq_cycles,
        outcome.ipc,
        outcome.spt_cycles,
        [
            (
                loop.func_name, loop.header, loop.speedup,
                loop.misspeculation_ratio, loop.iterations,
                loop.seq_cycles, loop.spt_cycles,
            )
            for loop in outcome.loops
        ],
    )


def test_full_simulation_snapshot_resume_identity():
    """The whole triple -- interpreter, timing tracer, SPT collectors --
    resumes bitwise-identically from a mid-loop snapshot."""
    module = compile_minic(SOURCE)
    compiled = compile_spt(module, best_config(), Workload(args=(48,)))
    assert compiled.spt_loops, "fixture must select an SPT loop"
    index = InstrIndex(module)

    machine, tracer, collectors = build_simulation(
        module, compiled, fuel=FUEL
    )
    snapshots = []
    last = [-500]

    def hook(m, frame):
        if m.executed - last[0] < 500:
            return
        last[0] = m.executed
        snapshots.append(
            json.loads(
                json.dumps(
                    snapshot_simulation(m, frame, tracer, collectors, index)
                )
            )
        )

    machine.checkpoint_hook = hook
    result = machine.run("main", [96])
    reference = _outcome_tuple(
        finalize_simulation(result, tracer, collectors)
    )
    reference_memory = machine.memory
    reference_executed = machine.executed
    assert snapshots, "cadence must produce at least one snapshot"

    for state in snapshots:
        re_machine, re_tracer, re_collectors = build_simulation(
            module, compiled, fuel=FUEL
        )
        frame = restore_simulation(
            re_machine, state, re_tracer, re_collectors, index
        )
        resumed_result = re_machine.resume_frame(frame)
        assert re_machine.memory == reference_memory
        assert re_machine.executed == reference_executed
        assert (
            _outcome_tuple(
                finalize_simulation(
                    resumed_result, re_tracer, re_collectors
                )
            )
            == reference
        )


def test_instr_index_is_stable_across_processes():
    """Two independent compiles of the same module agree on every key."""
    a = InstrIndex(compile_minic(SOURCE))
    b = InstrIndex(compile_minic(SOURCE))
    assert len(a) == len(b) > 0
    for key in list(a._instr_by_key):
        b.instr_of(key)  # must not raise


def test_restore_into_wrong_module_raises():
    from repro.checkpoint import CheckpointError
    from repro.profiling.interp import InterpError

    _, _, _, snapshots = _capture_machine_snapshots(SOURCE, 40)
    other = compile_minic("int main(int n) { return n; }")
    machine = Machine(other, fuel=FUEL)
    with pytest.raises((CheckpointError, InterpError, KeyError)):
        frame = machine.restore_state(snapshots[-1])
        machine.resume_frame(frame)


# -- property: generated programs, every boundary ---------------------------

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402

from repro.testkit.generator import GenConfig  # noqa: E402
from repro.testkit.strategies import minic_sources  # noqa: E402

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

_SMALL = GenConfig(max_depth=2, max_stmts=3, n_scalars=3, n_arrays=1)


@_SETTINGS
@given(source=minic_sources(config=_SMALL))
def test_property_roundtrip_on_generated_programs(source):
    module, reference, result, snapshots = _capture_machine_snapshots(
        source, 17, every=32
    )
    for state in snapshots:
        wire = json.loads(json.dumps(state))
        machine = Machine(compile_minic(source), fuel=FUEL)
        frame = machine.restore_state(wire)
        assert machine.snapshot_state(frame) == state
        assert machine.resume_frame(frame) == result
        assert machine.executed == reference.executed
        assert machine.memory == reference.memory
