"""The on-disk snapshot store: durability, corruption tolerance, and
the checkpointed simulation driver's resume-identity guarantee."""

import json
import os

import pytest

from repro.checkpoint import CheckpointStore, simulation_key
from repro.checkpoint.runner import run_checkpointed_simulation
from repro.checkpoint.store import CHECKPOINT_SCHEMA
from repro.core.config import best_config
from repro.core.pipeline import Workload, compile_spt
from repro.frontend import compile_minic
from repro.resilience.faults import reset_fault_state

SOURCE = """
global int data[512];
global int out[512];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 511];
        int a = x * 3 + i;
        int b = (a << 2) ^ x;
        out[i & 511] = b & 1023;
        s += b & 31;
    }
    return s;
}
"""


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


@pytest.fixture()
def compiled():
    module = compile_minic(SOURCE)
    result = compile_spt(module, best_config(), Workload(args=(48,)))
    assert result.spt_loops
    return module, result


def _outcome_tuple(outcome):
    return (
        outcome.result, outcome.seq_cycles, outcome.ipc, outcome.spt_cycles,
        [
            (l.func_name, l.header, l.speedup, l.misspeculation_ratio,
             l.iterations, l.seq_cycles, l.spt_cycles)
            for l in outcome.loops
        ],
    )


def test_save_load_roundtrip(tmp_path):
    store = CheckpointStore(str(tmp_path))
    state = {"interp": {"executed": 7}, "timing": {}, "collectors": []}
    path = store.save("k" * 64, 7, state)
    assert path is not None and os.path.exists(path)
    assert store.available("k" * 64) == [7]
    assert store.load("k" * 64, 7) == state
    assert store.stats.saves == 1 and store.stats.restores == 1


def test_corrupt_snapshot_is_counted_removed_and_skipped(tmp_path):
    store = CheckpointStore(str(tmp_path))
    key = "k" * 64
    store.save(key, 5, {"a": 1})
    store.save(key, 9, {"a": 2})
    # Tear the newer snapshot on disk.
    path = store._path_for(key, 9)
    with open(path, "w") as handle:
        handle.write('{"schema": "repro-checkpoint/1", "trunc')
    loaded = store.load_latest(key)
    assert loaded == (5, {"a": 1})  # fell back past the corrupt one
    assert store.stats.corrupt == 1
    assert not os.path.exists(path)  # removed best-effort


@pytest.mark.parametrize(
    "mutation",
    [
        lambda d: d.update(schema="other-schema/9"),
        lambda d: d.update(format=999),
        lambda d: d.update(key="m" * 64),
        lambda d: d.update(executed=123456),
        lambda d: d.update(state=None),
    ],
)
def test_mismatched_documents_degrade_to_miss(tmp_path, mutation):
    store = CheckpointStore(str(tmp_path))
    key = "k" * 64
    path = store.save(key, 5, {"a": 1})
    document = json.load(open(path))
    assert document["schema"] == CHECKPOINT_SCHEMA
    mutation(document)
    json.dump(document, open(path, "w"))
    assert store.load(key, 5) is None
    assert store.stats.corrupt == 1


def test_injected_save_fault_suppresses_without_crashing(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT", "checkpoint.save:raise")
    store = CheckpointStore(str(tmp_path))
    assert store.save("k" * 64, 5, {"a": 1}) is None
    assert store.stats.save_failures == 1
    assert store.available("k" * 64) == []


def test_injected_restore_fault_misses_but_keeps_the_snapshot(
    tmp_path, monkeypatch
):
    store = CheckpointStore(str(tmp_path))
    key = "k" * 64
    path = store.save(key, 5, {"a": 1})
    monkeypatch.setenv("REPRO_FAULT", "checkpoint.restore:raise")
    assert store.load(key, 5) is None
    assert os.path.exists(path)  # healthy snapshot must survive the fault
    monkeypatch.delenv("REPRO_FAULT")
    assert store.load(key, 5) == {"a": 1}


def test_torn_save_cold_starts_cleanly(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT", "checkpoint.save:torn")
    store = CheckpointStore(str(tmp_path))
    key = "k" * 64
    store.save(key, 5, {"a": 1})  # published, but deliberately truncated
    assert store.load(key, 5) is None  # corrupt => miss, not crash
    assert store.stats.corrupt == 1


def test_checkpointed_simulation_resumes_bitwise_identically(
    tmp_path, compiled
):
    module, result = compiled
    cold, report = run_checkpointed_simulation(
        module, result, best_config(), args=(96,),
        checkpoint_every=500, checkpoint_dir=str(tmp_path),
    )
    assert report.saved_at, "cadence must save at least one snapshot"
    assert report.resumed_from is None

    for executed in report.saved_at:
        resumed, resumed_report = run_checkpointed_simulation(
            module, result, best_config(), args=(96,),
            resume_from=executed, checkpoint_dir=str(tmp_path),
        )
        assert resumed_report.resumed_from == executed
        assert _outcome_tuple(resumed) == _outcome_tuple(cold)

    latest, latest_report = run_checkpointed_simulation(
        module, result, best_config(), args=(96,),
        resume_from="latest", checkpoint_dir=str(tmp_path),
    )
    assert latest_report.resumed_from == max(report.saved_at)
    assert _outcome_tuple(latest) == _outcome_tuple(cold)


def test_resume_with_no_snapshot_cold_starts(tmp_path, compiled):
    module, result = compiled
    outcome, report = run_checkpointed_simulation(
        module, result, best_config(), args=(96,),
        resume_from="latest", checkpoint_dir=str(tmp_path),
    )
    assert report.resumed_from is None  # nothing stored: clean cold start
    assert outcome.result is not None


def test_simulation_key_separates_workloads_and_configs(compiled):
    module, _ = compiled
    base = simulation_key(module, best_config(), entry="main", args=(96,),
                          fuel=1000)
    assert base != simulation_key(module, best_config(), entry="main",
                                  args=(97,), fuel=1000)
    assert base != simulation_key(module, best_config(), entry="main",
                                  args=(96,), fuel=1001)
