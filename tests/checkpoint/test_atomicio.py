"""The shared durable-IO primitives (``repro.util.atomicio``)."""

import json
import os
import threading

import pytest

from repro.resilience.faults import reset_fault_state
from repro.util.atomicio import (
    append_line,
    atomic_write_bytes,
    atomic_write_json,
)


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


def test_atomic_write_creates_parents_and_replaces(tmp_path):
    path = tmp_path / "a" / "b" / "data.bin"
    atomic_write_bytes(str(path), b"one")
    assert path.read_bytes() == b"one"
    atomic_write_bytes(str(path), b"two")
    assert path.read_bytes() == b"two"
    # No temp litter left behind.
    assert [p.name for p in path.parent.iterdir()] == ["data.bin"]


def test_atomic_write_json_sorted_and_newline_terminated(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_json(str(path), {"b": 1, "a": 2}, indent=2)
    text = path.read_text()
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"b"')
    assert json.loads(text) == {"b": 1, "a": 2}


def test_append_line_appends_whole_lines(tmp_path):
    path = tmp_path / "log.jsonl"
    append_line(str(path), "one")
    append_line(str(path), "two\n")  # trailing newline normalized
    assert path.read_text() == "one\ntwo\n"


def test_append_line_interleaves_whole_records_under_threads(tmp_path):
    path = tmp_path / "log.jsonl"
    lines = [f"record-{i:03d}" for i in range(200)]

    def work(chunk):
        for line in chunk:
            append_line(str(path), line)

    threads = [
        threading.Thread(target=work, args=(lines[i::4],)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    written = path.read_text().splitlines()
    assert sorted(written) == sorted(lines)  # no torn or lost records


def test_torn_fault_truncates_once_then_writes_cleanly(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_FAULT", "checkpoint.save:torn")
    path = tmp_path / "doc.json"
    document = {"key": "x" * 200}
    atomic_write_json(str(path), document, fault_site="checkpoint.save")
    with pytest.raises(json.JSONDecodeError):
        json.loads(path.read_text())  # deliberately torn
    # The default fire budget is one: the retry publishes intact.
    atomic_write_json(str(path), document, fault_site="checkpoint.save")
    assert json.loads(path.read_text()) == document


def test_torn_fault_ignores_other_sites(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT", "checkpoint.save:torn")
    path = tmp_path / "doc.json"
    atomic_write_json(str(path), {"a": 1}, fault_site="other.site")
    assert json.loads(path.read_text()) == {"a": 1}
