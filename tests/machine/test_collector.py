"""SPT trace collector behaviour: region split, call aggregation,
invocation boundaries."""

from repro.analysis.loops import LoopNest
from repro.ir import parse_module
from repro.machine.spt_sim import SptTraceCollector, simulate_spt_loop
from repro.machine.timing import TimingModel
from repro.profiling import run_module

WITH_CALL = """\
module t
global shared[64]
func helper(v) {
entry:
  p = addr shared
  old = load p, 0 !shared
  new = add old, v
  store p, 0, new !shared
  ret new
}
func main(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  i = add i, 1
  spt_fork 0
  x = mul i, 3
  r = call helper(x)
  s = add s, r
  jump head
exit:
  spt_kill 0
  ret s
}
"""


def _collect(source, args, func_name="main", header="head"):
    module = parse_module(source)
    func = module.function(func_name)
    nest = LoopNest.build(func)
    loop = next(l for l in nest.loops if l.header == header)
    collector = SptTraceCollector(
        func_name, loop.header, loop.body, 0, TimingModel()
    )
    run_module(module, func_name=func_name, args=args, tracers=[collector])
    return collector


def test_region_split_at_fork():
    collector = _collect(WITH_CALL, [10])
    iterations = collector.invocations[0]
    assert len(iterations) == 10
    trace = iterations[3]
    pre_ops = [op for op in trace.ops if op.pre_fork]
    post_ops = [op for op in trace.ops if not op.pre_fork]
    # pre-fork: phi(i), lt, br, i-add; post: mul, call, s-add, jump, phi(s)...
    pre_opcodes = {op.instr.opcode for op in pre_ops}
    assert "binop" in pre_opcodes  # the induction update
    post_opcodes = {op.instr.opcode for op in post_ops}
    assert "call" in post_opcodes


def test_call_aggregation():
    collector = _collect(WITH_CALL, [5])
    trace = collector.invocations[0][2]
    call_ops = [op for op in trace.ops if op.instr.opcode == "call"]
    assert len(call_ops) == 1
    call = call_ops[0]
    # The callee's loads/stores are folded into the call record.
    assert call.mem_reads, "callee load not attributed to the call"
    assert call.mem_writes, "callee store not attributed to the call"
    # The callee's latency is charged onto the call op.
    assert call.latency > 1.0
    # The call's return value registers as a def.
    assert call.def_name is not None


def test_call_carried_dependence_causes_misspeculation():
    """helper() carries shared[0] across iterations: every speculative
    call reads what the main thread's post-fork call wrote."""
    collector = _collect(WITH_CALL, [40])
    stats = simulate_spt_loop(collector)
    assert stats.misspeculation_ratio > 0.1


MULTI_INVOCATION = """\
module t
func work(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  i = add i, 1
  spt_fork 0
  s = add s, i
  jump head
exit:
  spt_kill 0
  ret s
}
func main(m) {
entry:
  a = call work(3)
  b = call work(m)
  r = add a, b
  ret r
}
"""


def test_multiple_invocations_tracked_separately():
    collector = _collect(MULTI_INVOCATION, [5], func_name="work", header="head")
    # The collector watches `work`, which main calls twice.
    module = parse_module(MULTI_INVOCATION)
    func = module.function("work")
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    collector = SptTraceCollector("work", loop.header, loop.body, 0, TimingModel())
    run_module(module, func_name="main", args=[5], tracers=[collector])
    assert len(collector.invocations) == 2
    assert len(collector.invocations[0]) == 3
    assert len(collector.invocations[1]) == 5


def test_stats_accumulate_across_invocations():
    module = parse_module(MULTI_INVOCATION)
    func = module.function("work")
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    collector = SptTraceCollector("work", loop.header, loop.body, 0, TimingModel())
    run_module(module, func_name="main", args=[6], tracers=[collector])
    stats = simulate_spt_loop(collector)
    assert stats.invocations == 2
    assert stats.iterations == 9
