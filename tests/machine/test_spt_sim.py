"""SPT execution model tests: trace collection, violation detection,
round timing (paper §8 machine model)."""

import copy

import pytest

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.partition import find_optimal_partition
from repro.core.transform import transform_loop
from repro.ir import parse_module
from repro.machine.spt_sim import (
    COMMIT_CYCLES,
    FORK_CYCLES,
    SptTraceCollector,
    simulate_spt_loop,
)
from repro.machine.timing import TimingModel
from repro.profiling import run_module
from repro.ssa import build_ssa


def _transform_and_trace(source, args, config=None, func_name="main"):
    config = config or SptConfig(prefork_fraction=0.9)
    module = parse_module(source)
    func = module.function(func_name)
    build_ssa(func)
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    graph = build_dep_graph(module, func, loop)
    partition = find_optimal_partition(graph, config)
    info = transform_loop(module, func, loop, partition, graph)

    nest2 = LoopNest.build(func)
    loop2 = next(l for l in nest2.loops if l.header == loop.header)
    collector = SptTraceCollector(
        func_name, loop2.header, loop2.body, info.loop_id, TimingModel()
    )
    result, _ = run_module(module, func_name=func_name, args=args, tracers=[collector])
    return collector, partition, result


PARALLEL = """\
module t
func main(n) {
  local a[8192]
  local b[8192]
entry:
  pa = addr a
  pb = addr b
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  m = and i, 127
  x = load pa, m !a
  t1 = mul x, 3
  t2 = add t1, 7
  t3 = mul t2, t2
  t4 = add t3, x
  t5 = mul t4, 5
  t6 = add t5, 11
  t7 = mul t6, t6
  t8 = add t7, t4
  t9 = mul t8, 3
  t10 = add t9, t2
  t11 = mul t10, t10
  t12 = add t11, t6
  t13 = mul t12, 7
  t14 = add t13, t10
  t15 = mul t14, t14
  t16 = add t15, t12
  t17 = mul t16, 9
  t18 = add t17, t14
  t19 = mul t18, t18
  t20 = add t19, t16
  t21 = mul t20, 11
  t22 = add t21, t18
  t23 = mul t22, t22
  t24 = add t23, t20
  store pb, m, t24 !b
  i = add i, 1
  jump head
exit:
  ret 0
}
"""


def test_parallel_loop_speeds_up():
    collector, partition, _ = _transform_and_trace(PARALLEL, [400])
    stats = simulate_spt_loop(collector)
    assert stats.iterations == 400
    assert stats.invocations == 1
    assert stats.misspeculation_ratio < 0.05
    # ~28 ops/iteration against 11 cycles of fork+commit overhead: the
    # paper's SPT loops average ~400 instructions and reach ~1.26.
    assert stats.loop_speedup > 1.2


def test_parallel_loop_trace_shapes():
    collector, partition, _ = _transform_and_trace(PARALLEL, [50])
    stats = simulate_spt_loop(collector)
    # ~28 costly ops per iteration plus phi/jump records.
    assert 25 <= stats.avg_body_ops <= 40
    assert stats.prefork_fraction < 0.3


SERIAL = """\
module t
func main(n) {
  local a[8192]
entry:
  pa = addr a
  i = copy 0
  acc = copy 1
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  t1 = mul acc, 3
  t2 = add t1, 7
  t3 = mul t2, 5
  t4 = add t3, 1
  m = mod t4, 1000
  acc = add m, 1
  store pa, i, acc !a
  i = add i, 1
  jump head
exit:
  ret acc
}
"""


def test_serial_loop_has_high_misspeculation():
    """A true recurrence through acc: with only the induction variable
    movable into the small pre-fork region, nearly every speculative
    iteration re-executes the acc chain."""
    config = SptConfig(prefork_fraction=0.15)
    collector, partition, _ = _transform_and_trace(SERIAL, [200], config)
    stats = simulate_spt_loop(collector)
    assert stats.misspeculation_ratio > 0.3
    assert stats.loop_speedup < 1.2


def test_serial_loop_fixed_by_large_prefork():
    """Moving the whole recurrence pre-fork eliminates misspeculation
    (at the price of a big sequential region)."""
    config = SptConfig(prefork_fraction=0.99)
    collector, partition, _ = _transform_and_trace(SERIAL, [200], config)
    stats = simulate_spt_loop(collector)
    assert stats.misspeculation_ratio < 0.05


def test_single_iteration_loop_pays_overhead():
    collector, _, _ = _transform_and_trace(PARALLEL, [1])
    stats = simulate_spt_loop(collector)
    assert stats.iterations == 1
    assert stats.spt_cycles == pytest.approx(stats.seq_cycles + FORK_CYCLES)


def test_zero_trip_loop_records_nothing():
    collector, _, _ = _transform_and_trace(PARALLEL, [0])
    stats = simulate_spt_loop(collector)
    assert stats.iterations == 0
    assert stats.spt_cycles == 0.0


def test_round_timing_includes_overheads():
    collector, _, _ = _transform_and_trace(PARALLEL, [2])
    stats = simulate_spt_loop(collector)
    # One round: pre + fork + max(post, spec) + commit (+ reexec).
    assert stats.spt_cycles >= FORK_CYCLES + COMMIT_CYCLES
    assert stats.spt_cycles < stats.seq_cycles + FORK_CYCLES + COMMIT_CYCLES


SILENT = """\
module t
func main(n) {
  local flag[4]
entry:
  p = addr flag
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  store p, 0, 1 !flag
  v = load p, 0 !flag
  w = add v, i
  store p, 1, w !flag
  i = add i, 1
  jump head
exit:
  ret 0
}
"""


def test_silent_stores_do_not_violate():
    """store p,0,1 writes the same value every iteration: value-based
    detection must not flag the dependent load."""
    collector, _, _ = _transform_and_trace(SILENT, [100])
    stats = simulate_spt_loop(collector)
    assert stats.misspeculation_ratio < 0.05
