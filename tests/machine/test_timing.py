"""Cache, branch predictor, and timing model tests."""

import pytest

from repro.ir import parse_module
from repro.machine.branchpred import BranchPredictor
from repro.machine.cache import MemoryHierarchy
from repro.machine.timing import (
    MISPREDICT_PENALTY,
    TimingModel,
    TimingTracer,
)
from repro.profiling import run_module


def test_cache_first_touch_misses_then_hits():
    hierarchy = MemoryHierarchy()
    assert hierarchy.access(0) == hierarchy.memory_latency
    assert hierarchy.access(1) == 1.0  # same L1 line
    assert hierarchy.access(0) == 1.0


def test_cache_capacity_eviction():
    hierarchy = MemoryHierarchy(l1_lines=2, l2_lines=4, l3_lines=8, line_words=1)
    hierarchy.access(0)
    hierarchy.access(1)
    hierarchy.access(2)  # evicts line 0 from L1
    assert hierarchy.access(0) == 5.0  # L2 hit


def test_streaming_misses_at_line_granularity():
    hierarchy = MemoryHierarchy()
    latencies = [hierarchy.access(a) for a in range(64)]
    memory_misses = sum(1 for lat in latencies if lat == hierarchy.memory_latency)
    l1_misses = sum(1 for lat in latencies if lat > 1.0)
    assert memory_misses == 4  # one per 16-word L2/L3 line
    assert l1_misses == 8  # one per 8-word L1 line


def test_branch_predictor_learns_bias():
    predictor = BranchPredictor()
    for _ in range(100):
        predictor.predict_and_update(1, True)
    assert predictor.misprediction_rate < 0.05


def test_branch_predictor_alternating_pattern_mispredicts():
    predictor = BranchPredictor()
    for i in range(100):
        predictor.predict_and_update(1, i % 2 == 0)
    assert predictor.misprediction_rate > 0.4


LOOP = """\
module t
func main(n) {
  local data[4096]
entry:
  p = addr data
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load p, i !data
  s = add s, v
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def test_timing_tracer_accumulates_cycles_and_instrs():
    module = parse_module(LOOP)
    tracer = TimingTracer()
    run_module(module, args=[100], tracers=[tracer])
    assert tracer.cycles > 0
    assert tracer.instructions > 400  # ~5 counted ops x 100 iterations
    assert 0 < tracer.ipc < 6


def test_loop_cycle_attribution_and_coverage():
    module = parse_module(LOOP)
    tracer = TimingTracer()
    run_module(module, args=[200], tracers=[tracer])
    key = ("main", "head")
    assert key in tracer.loop_cycles
    coverage = tracer.coverage(key)
    assert 0.8 < coverage <= 1.0  # nearly all time is in the loop
    assert tracer.loop_entries[key] == 1


def test_ipc_is_higher_for_compute_than_pointer_chasing():
    compute = parse_module(LOOP.replace("v = load p, i !data", "v = mul i, 3"))
    chase = parse_module(
        """\
module t
func main(n) {
  local data[100000]
entry:
  p = addr data
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  a = mul i, 977
  m = mod a, 100000
  v = load p, m !data
  s = add s, v
  i = add i, 1
  jump head
exit:
  ret s
}
"""
    )
    t1 = TimingTracer()
    run_module(compute, args=[300], tracers=[t1])
    t2 = TimingTracer()
    run_module(chase, args=[300], tracers=[t2])
    assert t1.ipc > t2.ipc * 1.5


def test_mispredict_penalty_constant_matches_paper():
    assert MISPREDICT_PENALTY == 5.0
