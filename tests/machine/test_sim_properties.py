"""Simulator invariants, checked over generated loop shapes:

* SPT wall-clock can never beat perfect two-way parallelism (half the
  sequential time) and never exceeds sequential time plus all overheads
  and all re-execution;
* misspeculation and re-execution ratios live in [0, 1];
* statistics are internally consistent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.partition import find_optimal_partition
from repro.core.transform import transform_loop
from repro.ir import parse_module
from repro.machine.spt_sim import (
    COMMIT_CYCLES,
    FORK_CYCLES,
    SptTraceCollector,
    simulate_spt_loop,
)
from repro.machine.timing import TimingModel
from repro.profiling import run_module

_STMTS = [
    "  x = load p, im !buf",
    "  acc = add acc, {k}",
    "  acc = mul acc, 3",
    "  y = mul x, {k}\n  acc = add acc, y",
    "  store p, im, acc !buf",
    "  z = and acc, 255\n  store p, z, i !buf",
]


@st.composite
def sim_loop_source(draw):
    lines = [
        stmt.format(k=draw(st.integers(1, 7)))
        for stmt in draw(st.lists(st.sampled_from(_STMTS), min_size=2, max_size=5))
    ]
    # x must exist even if no load was drawn.
    body = "  x = copy i\n  im = and i, 255\n" + "\n".join(lines)
    return f"""\
module t
func main(n) {{
  local buf[256]
entry:
  p = addr buf
  acc = copy 1
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
{body}
  i = add i, 1
  jump head
exit:
  ret acc
}}
"""


def _simulate(source, n, prefork_fraction):
    from repro.ssa import build_ssa

    module = parse_module(source)
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    graph = build_dep_graph(module, func, loop)
    partition = find_optimal_partition(
        graph, SptConfig(prefork_fraction=prefork_fraction)
    )
    info = transform_loop(module, func, loop, partition, graph)
    nest2 = LoopNest.build(func)
    loop2 = next(l for l in nest2.loops if l.header == loop.header)
    collector = SptTraceCollector(
        "main", loop2.header, loop2.body, info.loop_id, TimingModel()
    )
    run_module(module, args=[n], tracers=[collector])
    return simulate_spt_loop(collector)


@settings(max_examples=25, deadline=None)
@given(
    sim_loop_source(),
    st.integers(0, 40),
    st.sampled_from([0.2, 0.6, 0.95]),
)
def test_spt_time_bounds(source, n, prefork_fraction):
    stats = _simulate(source, n, prefork_fraction)
    assert stats.iterations == n

    if n == 0:
        assert stats.spt_cycles == 0.0
        return

    rounds = (n + 1) // 2
    overheads = rounds * (FORK_CYCLES + COMMIT_CYCLES)
    # Lower bound: perfect overlap of every pair.
    assert stats.spt_cycles >= stats.seq_cycles / 2.0 - 1e-6
    # Upper bound: no overlap at all, plus overheads and re-execution.
    assert (
        stats.spt_cycles
        <= stats.seq_cycles + overheads + stats.reexec_cycles + 1e-6
    )


@settings(max_examples=25, deadline=None)
@given(sim_loop_source(), st.integers(1, 30))
def test_ratios_in_unit_interval(source, n):
    stats = _simulate(source, n, 0.5)
    assert 0.0 <= stats.misspeculation_ratio <= 1.0
    assert 0.0 <= stats.reexecution_ratio <= 1.0
    assert 0.0 <= stats.prefork_fraction <= 1.0
    assert stats.reexec_ops <= stats.spec_ops
    assert stats.reexec_cycles <= stats.spec_cycles + 1e-9


@settings(max_examples=15, deadline=None)
@given(sim_loop_source(), st.integers(2, 30))
def test_full_prefork_eliminates_misspeculation(source, n):
    """With (nearly) everything movable placed pre-fork, the remaining
    speculative work should rarely misspeculate."""
    loose = _simulate(source, n, 0.99)
    tight = _simulate(source, n, 0.05)
    assert loose.reexec_cycles <= tight.reexec_cycles + 1e-6
