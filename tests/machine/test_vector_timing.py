"""VectorTimingEngine must be bitwise-identical to TimingTracer.

The engine consumes block-granular events (from the compiled driver
and from compiled traces) instead of per-instruction hooks; everything
it reports -- ticks, cycles, instruction counts, per-loop attribution,
and the shared cache/predictor state it mutates -- must match a per-op
:class:`TimingTracer` run exactly, not approximately.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite import SUITE
from repro.frontend import compile_minic
from repro.machine.timing import TimingModel, TimingTracer
from repro.machine.vector_timing import VectorTimingEngine
from repro.profiling import CompiledMachine
from repro.ssa import build_ssa, optimize
from tests.integration.test_equivalence_random import _STMTS, _build_source

import pytest


def _prepare(source, name="m"):
    module = compile_minic(source, name=name)
    for func in module.functions.values():
        build_ssa(func)
        optimize(func)
    return module


def _model_state(model: TimingModel):
    """Every externally visible piece of shared timing state."""
    hierarchy = model.hierarchy
    return {
        "accesses": hierarchy.accesses,
        "levels": [
            (lvl.hits, lvl.misses, list(lvl._lines)) for lvl in hierarchy.levels
        ],
        "predictions": model.predictor.predictions,
        "mispredictions": model.predictor.mispredictions,
        "counters": dict(model.predictor._counters),
    }


def _run_tracer(module, args):
    tracer = TimingTracer(TimingModel())
    machine = CompiledMachine(module)
    machine.add_tracer(tracer)
    result = machine.run("main", list(args))
    return tracer, result


def _run_engine(module, args, trace=True, **kw):
    engine = VectorTimingEngine(TimingModel())
    machine = CompiledMachine(
        module, trace=trace, timing_engine=engine, **kw
    )
    result = machine.run("main", list(args))
    engine.flush()
    return engine, result


def _assert_equal_accounting(module, args, trace=True, **kw):
    tracer, ref_result = _run_tracer(module, args)
    engine, result = _run_engine(module, args, trace=trace, **kw)
    assert result == ref_result
    assert engine.ticks == tracer.ticks
    assert engine.cycles == tracer.cycles
    assert engine.instructions == tracer.instructions
    assert engine.loop_cycles == tracer.loop_cycles
    assert _model_state(engine.model) == _model_state(tracer.model)
    return engine


_NESTED = """
global int grid[256];
int weigh(int x) {
    int acc = 0;
    for (int k = 0; k < 4; k++) { acc += (x >> k) & 1; }
    return acc;
}
int main(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 16; j++) {
            grid[(i * 16 + j) % 256] = i + j;
            if ((i + j) % 5 == 0) {
                total += weigh(grid[(i * 16 + j) % 256]);
            } else {
                total += grid[(i * 16 + j) % 256] % 3;
            }
        }
    }
    return total;
}
"""


@pytest.mark.parametrize("bench", SUITE, ids=lambda b: b.name)
def test_benchsuite_exact_accounting(bench):
    """Whole-suite exact equality of cycles, instructions, per-loop
    attribution and cache/predictor state (trace path enabled)."""
    module = _prepare(bench.source, name=bench.name)
    _assert_equal_accounting(module, [bench.train_n])


@pytest.mark.parametrize("trace", [False, True], ids=["driver", "traced"])
def test_nested_loops_and_calls(trace):
    """Loop-stack push/pop across nested loops and function frames is
    attributed identically, with and without compiled traces."""
    module = _prepare(_NESTED)
    engine = _assert_equal_accounting(
        module, [40], trace=trace, trace_hot_threshold=4
    )
    assert engine.loop_cycles  # non-vacuous: per-loop attribution happened
    # The memo layers actually engaged (otherwise this test measures
    # nothing about the fast paths).
    assert engine._neutral
    if trace:
        assert engine._pass_memo or engine._seqs == []


def test_forced_bailouts_accounting(monkeypatch):
    """Guard fall-backs mid-pass preserve exact accounting."""
    monkeypatch.setenv("REPRO_TRACE_BAILOUT", "3")
    module = _prepare(_NESTED)
    _assert_equal_accounting(module, [40], trace_hot_threshold=4)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, len(_STMTS) - 1), min_size=1, max_size=6),
    st.integers(0, 60),
)
def test_random_programs_exact_accounting(stmt_indices, n):
    module = _prepare(_build_source(stmt_indices))
    _assert_equal_accounting(module, [n], trace_hot_threshold=4)


def test_engine_rejects_tracer_attachment():
    """The engine is not a tracer: per-instr hooks must never drive it
    (that would double-charge and defeat batching)."""
    module = _prepare("int main(int n) { return n + 1; }")
    engine = VectorTimingEngine(TimingModel())
    machine = CompiledMachine(module)
    machine.add_tracer(engine)
    with pytest.raises(RuntimeError, match="must not be attached as a tracer"):
        machine.run("main", [1])


def test_reported_views():
    """Derived views (ipc, coverage) agree with the per-op tracer."""
    module = _prepare(_NESTED)
    tracer, _ = _run_tracer(module, [30])
    engine, _ = _run_engine(module, [30], trace_hot_threshold=4)
    assert engine.ipc == tracer.ipc
    for key in tracer.loop_cycles:
        assert engine.coverage(key) == tracer.coverage(key)
