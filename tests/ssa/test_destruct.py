"""Out-of-SSA translation tests, including the swap/lost-copy hazards."""

import copy

from repro.ir import Module, parse_function, verify_function
from repro.profiling import run_module
from repro.ssa import build_ssa, destruct_ssa


def _check_equivalent(source, args_list, func_name="f"):
    func = parse_function(source)
    module = Module("t")
    module.add_function(func)
    baseline = copy.deepcopy(module)

    build_ssa(func)
    destruct_ssa(func)
    assert all(i.opcode != "phi" for i in func.instructions())
    verify_function(module, func)

    for args in args_list:
        got, _ = run_module(module, func_name=func_name, args=list(args))
        want, _ = run_module(baseline, func_name=func_name, args=list(args))
        assert got == want, args


def test_simple_loop_destruct():
    _check_equivalent(
        """\
func f(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  s = add s, i
  i = add i, 1
  jump head
exit:
  ret s
}
""",
        [(0,), (1,), (10,)],
    )


def test_swap_pattern_destruct():
    """a and b swap every iteration: the classic parallel-copy hazard."""
    _check_equivalent(
        """\
func f(n) {
entry:
  a = copy 1
  b = copy 100
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  t = copy a
  a = copy b
  b = copy t
  i = add i, 1
  jump head
exit:
  r = mul a, 1000
  r2 = add r, b
  ret r2
}
""",
        [(0,), (1,), (2,), (7,)],
    )


def test_critical_edge_destruct():
    """A branch whose both targets carry phis forces edge splitting."""
    _check_equivalent(
        """\
func f(n) {
entry:
  x = copy 0
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  z = mod i, 2
  cz = eq z, 0
  br cz, even, head_back
even:
  x = add x, 10
  jump head_back
head_back:
  i = add i, 1
  jump head
exit:
  ret x
}
""",
        [(0,), (5,), (9,)],
    )


def test_diamond_destruct():
    _check_equivalent(
        """\
func f(a) {
entry:
  c = lt a, 0
  br c, neg, pos
neg:
  r = sub 0, a
  jump join
pos:
  r = copy a
  jump join
join:
  ret r
}
""",
        [(-5,), (0,), (3,)],
    )
