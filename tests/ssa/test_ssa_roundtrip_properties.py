"""Property tests: SSA construct → destruct preserves semantics.

Uses the testkit program generator (exposed as hypothesis strategies in
:mod:`repro.testkit.strategies`) to produce whole MiniC programs --
nested loops, irregular control flow, aliased arrays, helper calls --
then checks that building and destructing SSA leaves observable
behaviour (result, memory, symbols) bitwise unchanged.
"""

import copy

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402

from repro.frontend import compile_minic  # noqa: E402
from repro.ir import verify_function  # noqa: E402
from repro.profiling import run_module  # noqa: E402
from repro.ssa import build_ssa, destruct_ssa  # noqa: E402
from repro.testkit.generator import GenConfig  # noqa: E402
from repro.testkit.strategies import minic_programs  # noqa: E402

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

_SMALL = GenConfig(max_depth=2, max_stmts=3, n_scalars=3, n_arrays=1,
                   array_size=32, max_outer_trip=16, max_inner_trip=4)


def _roundtrip_and_compare(spec, workloads=(0, 5, 37)):
    module = compile_minic(spec.source())
    baseline = copy.deepcopy(module)

    for name in sorted(module.functions):
        func = module.functions[name]
        build_ssa(func)
        destruct_ssa(func)
        assert all(i.opcode != "phi" for i in func.instructions())
        verify_function(module, func)

    for n in workloads:
        got, got_m = run_module(module, args=[n])
        want, want_m = run_module(baseline, args=[n])
        assert got == want, f"n={n}: result {got} != {want}"
        assert got_m.memory == want_m.memory, f"n={n}: memory diverged"
        assert got_m.symbols == want_m.symbols, f"n={n}: symbols diverged"


@_SETTINGS
@given(spec=minic_programs())
def test_ssa_roundtrip_preserves_semantics(spec):
    _roundtrip_and_compare(spec)


@_SETTINGS
@given(spec=minic_programs(config=_SMALL))
def test_ssa_roundtrip_small_programs(spec):
    _roundtrip_and_compare(spec, workloads=(0, 1, 2, 3, 15))


@_SETTINGS
@given(spec=minic_programs())
def test_construct_is_idempotent_on_semantics(spec):
    """build_ssa alone (no destruct) must also preserve behaviour --
    the reference interpreter executes phi functions directly."""
    module = compile_minic(spec.source())
    baseline = copy.deepcopy(module)
    for name in sorted(module.functions):
        build_ssa(module.functions[name])
    for n in (0, 9):
        got, _ = run_module(module, args=[n])
        want, _ = run_module(baseline, args=[n])
        assert got == want, f"n={n}"
