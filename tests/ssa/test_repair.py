"""SSA repair and unreachable-block hygiene tests."""

from repro.ir import Module, parse_function, verify_function
from repro.profiling import run_module
from repro.ssa import build_ssa
from repro.ssa.optimize import optimize, remove_unreachable_blocks
from repro.ssa.repair import broken_variables, repair_ssa


def _module_with(func):
    module = Module("t")
    module.add_function(func)
    return module


def test_intact_function_reports_nothing_broken():
    func = parse_function(
        """\
func f(n) {
entry:
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  i = add i, 1
  jump head
exit:
  ret i
}
"""
    )
    build_ssa(func)
    assert broken_variables(func) == []
    assert repair_ssa(func) == []


def test_moved_def_is_detected_and_repaired():
    """Simulate the transform's code motion: a def hoisted into one arm
    of a diamond no longer dominates the join's use."""
    func = parse_function(
        """\
func f(c, a) {
entry:
  br c, left, right
left:
  x = add a, 1
  jump join
right:
  jump join
join:
  y = mul x, 2
  ret y
}
"""
    )
    module = _module_with(func)
    broken = broken_variables(func)
    assert [v.base for v in broken] == ["x"]
    repair_ssa(func)
    verify_function(module, func, ssa=True)
    # Dynamically the use only happens when c is true in real programs;
    # the repair keeps that path exact.
    got, _ = run_module(module, func_name="f", args=[1, 10])
    assert got == 22


def test_repair_is_noop_on_healthy_loops():
    func = parse_function(
        """\
func f(n) {
entry:
  s = copy 0
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  s = add s, i
  i = add i, 1
  jump head
exit:
  ret s
}
"""
    )
    build_ssa(func)
    module = _module_with(func)
    before = {id(i) for i in func.instructions()}
    assert repair_ssa(func) == []
    after = {id(i) for i in func.instructions()}
    assert before == after


def test_unreachable_blocks_do_not_trigger_repair():
    """Regression for the fuzzer-found bug: defs/uses in unreachable
    blocks must not be flagged, and 'repairing' them must not corrupt
    reachable values."""
    func = parse_function(
        """\
func f(n) {
entry:
  s = copy 3
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  jump else_arm
dead_then:
  s2 = add s, 1
  jump join
else_arm:
  s3 = sub s, 1
  jump join
join:
  s4 = phi [dead_then: s2, else_arm: s3]
  i2 = add i, 1
  jump head
exit:
  ret s
}
"""
    )
    build_ssa(func)
    # dead_then is unreachable: nothing should be considered broken.
    assert broken_variables(func) == []


def _diamond():
    func = parse_function(
        """\
func f(x, c) {
entry:
  br c, dead_arm, live_arm
dead_arm:
  a = add x, 100
  jump join
live_arm:
  a = add x, 1
  jump join
join:
  r = mul a, 1
  ret r
}
"""
    )
    return func


def test_remove_unreachable_blocks_cleans_phis():
    from repro.ir.instr import Jump

    func = _diamond()
    build_ssa(func)
    # Kill the dead_arm path after SSA, as a pass would.
    func.block("entry").instrs[-1] = Jump("live_arm")
    removed = remove_unreachable_blocks(func)
    assert removed == 1
    assert not func.has_block("dead_arm")
    join_phi = next(func.block("join").phis())
    assert set(join_phi.incomings) == {"live_arm"}
    module = _module_with(func)
    got, _ = run_module(module, func_name="f", args=[5, 0])
    assert got == 6


def test_optimize_deletes_constant_dead_arms():
    from repro.ir.instr import Branch
    from repro.ir.values import Const

    func = _diamond()
    build_ssa(func)
    # Constant-fold the condition, as constant propagation would.
    term = func.block("entry").terminator
    assert isinstance(term, Branch)
    term.cond = Const(False)
    optimize(func)
    assert not func.has_block("dead_arm")
    module = _module_with(func)
    got, _ = run_module(module, func_name="f", args=[5, 0])
    assert got == 6
