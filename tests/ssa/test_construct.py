"""SSA construction, verification, and cleanup tests."""

from repro.ir import Module, Var, parse_function, parse_module, verify_function
from repro.ssa import (
    build_ssa,
    copy_propagate,
    destruct_ssa,
    eliminate_dead_code,
    fold_constants,
    optimize,
)

LOOP = """\
func summing(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  s = add s, i
  i = add i, 1
  jump head
exit:
  ret s
}
"""

DIAMOND = """\
func pick(x) {
entry:
  c = lt x, 0
  br c, neg, pos
neg:
  y = sub 0, x
  jump join
pos:
  y = copy x
  jump join
join:
  ret y
}
"""


def _module_with(func):
    module = Module("t")
    module.add_function(func)
    return module


def test_ssa_form_verifies():
    func = parse_function(LOOP)
    build_ssa(func)
    verify_function(_module_with(func), func, ssa=True)


def test_loop_variables_get_header_phis():
    func = parse_function(LOOP)
    build_ssa(func)
    head = func.block("head")
    phi_bases = sorted(phi.dest.base for phi in head.phis())
    assert phi_bases == ["i", "s"]


def test_diamond_join_gets_phi():
    func = parse_function(DIAMOND)
    build_ssa(func)
    join = func.block("join")
    phis = list(join.phis())
    assert len(phis) == 1
    assert phis[0].dest.base == "y"
    assert set(phis[0].incomings) == {"neg", "pos"}


def test_single_assignment_property():
    func = parse_function(LOOP)
    build_ssa(func)
    defined = [p.name for p in func.params]
    for instr in func.instructions():
        if instr.dest is not None:
            assert instr.dest.name not in defined
            defined.append(instr.dest.name)


def test_destruct_removes_all_phis_and_verifies():
    func = parse_function(LOOP)
    build_ssa(func)
    destruct_ssa(func)
    assert all(instr.opcode != "phi" for instr in func.instructions())
    verify_function(_module_with(func), func, ssa=False)


def test_copy_propagation_shortens_chains():
    func = parse_function(
        """\
func f(x) {
entry:
  a = copy x
  b = copy a
  c = add b, 1
  ret c
}
"""
    )
    build_ssa(func)
    copy_propagate(func)
    eliminate_dead_code(func)
    add = next(i for i in func.instructions() if i.opcode == "binop")
    assert add.lhs.base == "x"
    # Both copies become dead after propagation.
    copies = [i for i in func.instructions() if i.opcode == "copy"]
    assert copies == []


def test_constant_folding_folds_arith():
    func = parse_function(
        """\
func f() {
entry:
  a = add 2, 3
  b = mul a, 4
  ret b
}
"""
    )
    build_ssa(func)
    optimize(func)
    ret = func.block("entry").terminator
    assert str(ret.value) == "20" or any(
        i.opcode == "copy" and str(i.src) == "20" for i in func.instructions()
    )


def test_dead_code_elimination_keeps_side_effects():
    func = parse_function(
        """\
func f(x) {
entry:
  unused = add x, 1
  call log(x)
  ret x
}
"""
    )
    build_ssa(func)
    eliminate_dead_code(func)
    opcodes = [i.opcode for i in func.instructions()]
    assert "binop" not in opcodes
    assert "call" in opcodes


def test_branch_simplification_on_constants():
    func = parse_function(
        """\
func f() {
entry:
  c = lt 1, 2
  jump test
test:
  br c, yes, no
yes:
  ret 1
no:
  ret 0
}
"""
    )
    build_ssa(func)
    optimize(func)
    term = func.block("test").terminator
    assert term.opcode == "jump"
    assert term.target == "yes"
