"""Property-based IR tests (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    BINARY_OPS,
    Builder,
    Const,
    Function,
    Module,
    UNARY_OPS,
    Var,
    format_function,
    format_module,
    parse_function,
    parse_module,
    verify_function,
)
from repro.profiling import run_module

var_names = st.sampled_from([f"v{i}" for i in range(6)])
int_consts = st.integers(min_value=-1000, max_value=1000)


@st.composite
def straightline_function(draw):
    """A random straight-line function over int temps."""
    func = Function("f", [Var("a0"), Var("a1")])
    b = Builder(func)
    b.new_block("entry")
    defined = [Var("a0"), Var("a1")]
    for index in range(draw(st.integers(1, 12))):
        dest = Var(f"v{index}")
        choice = draw(st.integers(0, 2))
        if choice == 0:
            op = draw(st.sampled_from([o for o in BINARY_OPS if o not in ("div", "mod", "shl", "shr")]))
            lhs = draw(st.sampled_from(defined)) if draw(st.booleans()) else Const(draw(int_consts))
            rhs = draw(st.sampled_from(defined)) if draw(st.booleans()) else Const(draw(int_consts))
            b.binop(op, dest, lhs, rhs)
        elif choice == 1:
            op = draw(st.sampled_from([o for o in UNARY_OPS if o not in ("i2f", "f2i")]))
            b.unop(op, dest, draw(st.sampled_from(defined)))
        else:
            b.copy(dest, draw(st.sampled_from(defined)))
        defined.append(dest)
    b.ret(draw(st.sampled_from(defined)))
    return func


@settings(max_examples=50, deadline=None)
@given(straightline_function())
def test_print_parse_roundtrip(func):
    text = format_function(func)
    reparsed = parse_function(text)
    assert format_function(reparsed) == text


@settings(max_examples=50, deadline=None)
@given(straightline_function())
def test_random_functions_verify(func):
    module = Module("t")
    module.add_function(func)
    verify_function(module, func)


@settings(max_examples=30, deadline=None)
@given(straightline_function(), int_consts, int_consts)
def test_roundtrip_preserves_semantics(func, a0, a1):
    """Printing and reparsing a function cannot change its meaning."""
    module = Module("t")
    module.add_function(func)
    reparsed = parse_module(format_module(module))
    want, _ = run_module(module, func_name="f", args=[a0, a1])
    got, _ = run_module(reparsed, func_name="f", args=[a0, a1])
    if isinstance(want, bool) or isinstance(got, bool):
        want, got = int(want), int(got)
    assert got == want


@settings(max_examples=30, deadline=None)
@given(straightline_function(), int_consts, int_consts)
def test_ssa_and_cleanup_preserve_semantics(func, a0, a1):
    """build_ssa + the cleanup pipeline is semantics-preserving."""
    import copy

    from repro.ssa import build_ssa, optimize

    module = Module("t")
    module.add_function(func)
    baseline = copy.deepcopy(module)
    build_ssa(func)
    optimize(func)
    verify_function(module, func, ssa=True)
    want, _ = run_module(baseline, func_name="f", args=[a0, a1])
    got, _ = run_module(module, func_name="f", args=[a0, a1])
    if isinstance(want, bool) or isinstance(got, bool):
        want, got = int(want), int(got)
    assert got == want
