"""Value, type, and def-use chain unit tests."""

import pytest

from repro.analysis.defuse import DefUse
from repro.ir import BOOL, FLOAT, INT, PTR, Const, Var, as_value, parse_function
from repro.ir.types import BY_NAME, join
from repro.ssa import build_ssa


def test_type_singletons():
    assert BY_NAME["int"] is INT
    assert BY_NAME["float"] is FLOAT
    assert INT.is_numeric and FLOAT.is_numeric
    assert not BOOL.is_numeric and not PTR.is_numeric


def test_type_join():
    assert join(INT, FLOAT) is FLOAT
    assert join(INT, INT) is INT
    assert join(PTR, INT) is PTR
    assert join(FLOAT, PTR) is FLOAT


def test_const_inference_and_equality():
    assert Const(3).type is INT
    assert Const(1.5).type is FLOAT
    assert Const(True).type is BOOL
    assert Const(3) == Const(3)
    assert Const(3) != Const(3.0)
    assert hash(Const(7)) == hash(Const(7))


def test_var_identity_and_versions():
    assert Var("x") == Var("x")
    assert Var("x") != Var("y")
    versioned = Var("x").with_version(3)
    assert versioned.name == "x.3"
    assert versioned.base == "x"
    assert Var("x.3").base == "x"


def test_as_value_coercion():
    assert as_value(5) == Const(5)
    assert as_value(Var("a")) == Var("a")
    with pytest.raises(TypeError):
        as_value("nope")


def test_defuse_chains():
    func = parse_function(
        """\
func f(n) {
entry:
  a = add n, 1
  b = mul a, a
  call sink(b)
  ret b
}
"""
    )
    build_ssa(func)
    du = DefUse(func)
    a = next(v for v in du.defs if v.base == "a")
    b = next(v for v in du.defs if v.base == "b")
    assert du.def_of(a).instr.opcode == "binop"
    assert len(du.uses_of(a)) == 2  # both operands of the mul
    assert len(du.uses_of(b)) == 2  # call arg + return
    assert not du.is_dead(b)
    n = next(p for p in func.params)
    assert len(du.uses_of(n)) == 1


def test_defuse_rejects_non_ssa():
    func = parse_function(
        """\
func f() {
entry:
  x = copy 1
  x = copy 2
  ret x
}
"""
    )
    with pytest.raises(ValueError, match="not in SSA"):
        DefUse(func)


def test_config_validation():
    from repro.core import SptConfig

    with pytest.raises(ValueError):
        SptConfig(prefork_fraction=1.5)
    with pytest.raises(ValueError):
        SptConfig(min_body_size=100, max_body_size=10)
    with pytest.raises(ValueError):
        SptConfig(max_unroll_factor=0)
    with pytest.raises(ValueError):
        SptConfig(cycles_per_op=0.0)
    config = SptConfig().with_overrides(cost_fraction=0.3)
    assert config.cost_fraction == 0.3
