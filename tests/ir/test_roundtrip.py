"""Printer/parser round-tripping and basic IR structure tests."""

import pytest

from repro.ir import (
    Builder,
    Const,
    Function,
    IRParseError,
    Var,
    format_function,
    format_module,
    parse_function,
    parse_module,
)

SAMPLE = """\
module sample
global err[100]

func accumulate(n) {
  local buf[64]
entry:
  i = copy 0
  s = copy 0.0
  jump head
head:
  i.2 = phi [body: i.3, entry: i]
  s.2 = phi [body: s.3, entry: s]
  c = lt i.2, n
  br c, body, exit
body:
  a = addr buf
  x = load a, i.2 !buf
  y = abs x
  s.3 = add s.2, y
  i.3 = add i.2, 1
  call log(i.3)
  jump head
exit:
  spt_kill 0
  ret s.2
}
"""


def test_module_roundtrip_is_stable():
    module = parse_module(SAMPLE)
    text1 = format_module(module)
    text2 = format_module(parse_module(text1))
    assert text1 == text2


def test_parse_preserves_structure():
    module = parse_module(SAMPLE)
    func = module.function("accumulate")
    assert [b.label for b in func.blocks] == ["entry", "head", "body", "exit"]
    assert func.params == [Var("n")]
    assert "buf" in func.arrays
    assert func.arrays["buf"].size == 64
    assert "err" in module.globals


def test_phi_incomings_parse():
    module = parse_module(SAMPLE)
    head = module.function("accumulate").block("head")
    phis = list(head.phis())
    assert len(phis) == 2
    assert phis[0].incomings == {"body": Var("i.3"), "entry": Var("i")}


def test_load_sym_annotation_roundtrips():
    module = parse_module(SAMPLE)
    body = module.function("accumulate").block("body")
    loads = [i for i in body.instrs if i.opcode == "load"]
    assert loads[0].sym == "buf"


def test_float_constants_roundtrip():
    module = parse_module(SAMPLE)
    entry = module.function("accumulate").block("entry")
    copies = [i for i in entry.instrs if i.opcode == "copy"]
    assert copies[1].src == Const(0.0)
    assert "0.0" in format_function(module.function("accumulate"))


def test_parse_rejects_garbage():
    with pytest.raises(IRParseError):
        parse_function("func f() {\nentry:\n  x = frobnicate y\n}")


def test_parse_rejects_instruction_outside_block():
    with pytest.raises(IRParseError):
        parse_function("func f() {\n  x = copy 1\n}")


def test_builder_produces_parseable_ir():
    func = Function("double_all", [Var("n")])
    b = Builder(func)
    b.new_block("entry")
    i = Var("i")
    b.copy(i, 0)
    b.jump("head")
    b.new_block("head")
    c = b.fresh("c")
    b.lt(c, i, Var("n"))
    b.branch(c, "body", "exit")
    b.new_block("body")
    base = b.fresh("base")
    b.addr(base, "data")
    x = b.fresh("x")
    b.load(x, base, i, sym="data")
    b.mul(x, x, 2)
    b.store(base, i, x, sym="data")
    b.add(i, i, 1)
    b.jump("head")
    b.new_block("exit")
    b.ret()
    func.declare_array("data", 128)

    text = format_function(func)
    reparsed = parse_function(text)
    assert format_function(reparsed) == text


def test_block_append_after_terminator_raises():
    func = Function("f")
    b = Builder(func)
    b.new_block("entry")
    b.ret()
    with pytest.raises(ValueError):
        b.copy(Var("x"), 1)


def test_terminator_and_successors():
    module = parse_module(SAMPLE)
    func = module.function("accumulate")
    assert func.block("head").successors() == ["body", "exit"]
    assert func.block("exit").successors() == []
    assert func.block("entry").successors() == ["head"]
