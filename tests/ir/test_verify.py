"""IR verifier tests: every well-formedness rule must fire."""

import pytest

from repro.ir import (
    Builder,
    Function,
    Module,
    Phi,
    Var,
    VerificationError,
    parse_module,
    verify_function,
    verify_module,
)


def _module_of(text):
    return parse_module(text)


def test_valid_module_passes():
    module = _module_of(
        """\
module t
func f(n) {
entry:
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  i = add i, 1
  jump head
exit:
  ret i
}
"""
    )
    verify_module(module)


def test_missing_terminator_detected():
    module = Module("t")
    func = Function("f")
    module.add_function(func)
    func.add_block("entry").instrs.append(
        # no terminator
        __import__("repro.ir.instr", fromlist=["Copy"]).Copy(Var("x"), Var("y"))
    )
    with pytest.raises(VerificationError, match="missing terminator"):
        verify_function(module, func)


def test_branch_to_unknown_block_detected():
    module = _module_of(
        """\
module t
func f() {
entry:
  jump nowhere
}
"""
    )
    # Parsing succeeds; verification must flag the dangling target.
    with pytest.raises(VerificationError, match="unknown block"):
        verify_module(module)


def test_phi_incomings_must_match_predecessors():
    module = _module_of(
        """\
module t
func f(x) {
entry:
  c = lt x, 0
  br c, a, b
a:
  jump join
b:
  jump join
join:
  y = phi [a: 1]
  ret y
}
"""
    )
    with pytest.raises(VerificationError, match="phi"):
        verify_module(module)


def test_memory_op_with_undeclared_symbol_detected():
    module = _module_of(
        """\
module t
func f(p) {
entry:
  x = load p, 0 !ghost
  ret x
}
"""
    )
    with pytest.raises(VerificationError, match="undeclared array"):
        verify_module(module)


def test_ssa_double_definition_detected():
    module = _module_of(
        """\
module t
func f() {
entry:
  x = copy 1
  x = copy 2
  ret x
}
"""
    )
    verify_module(module)  # fine structurally
    with pytest.raises(VerificationError, match="redefined"):
        verify_module(module, ssa=True)


def test_ssa_use_before_def_detected():
    module = _module_of(
        """\
module t
func f(c) {
entry:
  br c, a, b
a:
  x = copy 1
  jump join
b:
  jump join
join:
  y = add x, 1
  ret y
}
"""
    )
    with pytest.raises(VerificationError, match="not dominated"):
        verify_module(module, ssa=True)


def test_phi_after_non_phi_detected():
    module = _module_of(
        """\
module t
func f(x) {
entry:
  jump next
next:
  y = copy x
  ret y
}
"""
    )
    block = module.function("f").block("next")
    block.instrs.insert(1, Phi(Var("z"), {"entry": Var("x")}))
    with pytest.raises(VerificationError, match="phi after non-phi"):
        verify_module(module)
