"""Differential testing of the MiniC lowering: a tiny AST-level
reference evaluator, written independently of the IR pipeline, must
agree with frontend-lowered code run on the IR interpreter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import ast, compile_minic, parse_source
from repro.profiling import run_module


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class ReferenceEvaluator:
    """Direct AST evaluation with C-like semantics."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.functions = {f.name: f for f in program.functions}
        self.globals = {
            g.name: [0] * g.array_size for g in program.globals
        }

    def call(self, name: str, args):
        func = self.functions[name]
        env = {p.name: v for p, v in zip(func.params, args)}
        arrays = dict(self.globals)
        try:
            self._block(func.body, env, arrays)
        except _Return as ret:
            return ret.value
        return None

    def _block(self, block: ast.Block, env, arrays):
        for stmt in block.stmts:
            self._stmt(stmt, env, arrays)

    def _stmt(self, stmt, env, arrays):
        if isinstance(stmt, ast.Block):
            self._block(stmt, env, arrays)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.array_size is not None:
                arrays[stmt.name] = [0] * stmt.array_size
            else:
                value = self._expr(stmt.init, env, arrays) if stmt.init else 0
                if stmt.type_name == "float":
                    value = float(value)
                env[stmt.name] = value
        elif isinstance(stmt, ast.Assign):
            value = self._expr(stmt.value, env, arrays)
            if isinstance(stmt.target, ast.VarRef):
                env[stmt.target.name] = value
            else:
                index = self._expr(stmt.target.index, env, arrays)
                arrays[stmt.target.name][index] = value
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, env, arrays)
        elif isinstance(stmt, ast.If):
            if self._expr(stmt.cond, env, arrays):
                self._block(stmt.then_body, env, arrays)
            elif stmt.else_body is not None:
                self._block(stmt.else_body, env, arrays)
        elif isinstance(stmt, ast.While):
            while self._expr(stmt.cond, env, arrays):
                try:
                    self._block(stmt.body, env, arrays)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._stmt(stmt.init, env, arrays)
            while stmt.cond is None or self._expr(stmt.cond, env, arrays):
                try:
                    self._block(stmt.body, env, arrays)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self._stmt(stmt.step, env, arrays)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.Return):
            raise _Return(
                self._expr(stmt.value, env, arrays) if stmt.value else None
            )
        else:
            raise AssertionError(stmt)

    def _expr(self, expr, env, arrays):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.VarRef):
            return env[expr.name]
        if isinstance(expr, ast.ArrayRef):
            return arrays[expr.name][self._expr(expr.index, env, arrays)]
        if isinstance(expr, ast.Unary):
            value = self._expr(expr.operand, env, arrays)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return 0 if value else 1
            return ~int(value)
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                return 1 if (self._expr(expr.lhs, env, arrays)
                             and self._expr(expr.rhs, env, arrays)) else 0
            if expr.op == "||":
                return 1 if (self._expr(expr.lhs, env, arrays)
                             or self._expr(expr.rhs, env, arrays)) else 0
            a = self._expr(expr.lhs, env, arrays)
            b = self._expr(expr.rhs, env, arrays)
            return self._binop(expr.op, a, b)
        if isinstance(expr, ast.CallExpr):
            args = [self._expr(a, env, arrays) for a in expr.args]
            return self.call(expr.name, args)
        raise AssertionError(expr)

    @staticmethod
    def _binop(op, a, b):
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if isinstance(a, float) or isinstance(b, float):
                return a / b
            return int(a / b)
        if op == "%":
            return a - b * int(a / b)
        if op == "<<":
            return int(a) << int(b)
        if op == ">>":
            return int(a) >> int(b)
        if op == "&":
            return int(a) & int(b)
        if op == "|":
            return int(a) | int(b)
        if op == "^":
            return int(a) ^ int(b)
        comparisons = {
            "<": a < b, "<=": a <= b, ">": a > b,
            ">=": a >= b, "==": a == b, "!=": a != b,
        }
        return 1 if comparisons[op] else 0


_EXPRS = [
    "i * 3 + s",
    "(s << 1) ^ i",
    "T[i & 15] + 1",
    "s % 7",
    "s / 3 + i",
    "-s + ~i",
    "(i < 5) + (s >= 2)",
    "(i % 2 == 0) && (s > 0)",
    "(s & 255) | (i << 2)",
]

_TEMPLATE = """
global int T[16];

int main(int n) {{
    int s = 3;
    for (int i = 0; i < n; i++) {{
        T[i & 15] = {expr_a};
        if ({expr_b} > 4) {{
            s += {expr_c};
        }} else {{
            s -= 1;
        }}
    }}
    return s;
}}
"""


def _evaluate_both(source: str, n: int):
    program = parse_source(source)
    reference = ReferenceEvaluator(program)
    want = reference.call("main", [n])

    module = compile_minic(source)
    got, _ = run_module(module, args=[n])
    if isinstance(got, bool):
        got = int(got)
    if isinstance(want, bool):
        want = int(want)
    return got, want


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(_EXPRS),
    st.sampled_from(_EXPRS),
    st.sampled_from(_EXPRS),
    st.integers(0, 30),
)
def test_lowering_matches_reference(expr_a, expr_b, expr_c, n):
    source = _TEMPLATE.format(expr_a=expr_a, expr_b=expr_b, expr_c=expr_c)
    got, want = _evaluate_both(source, n)
    assert got == want, source


def test_reference_agrees_on_break_continue():
    source = """
global int T[16];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 3 == 0) { continue; }
        if (i > 12) { break; }
        s += i;
    }
    int j = 0;
    while (1) {
        j += 1;
        if (j >= n) { break; }
    }
    return s * 100 + j;
}
"""
    for n in (1, 5, 20):
        got, want = _evaluate_both(source, n)
        assert got == want, n
