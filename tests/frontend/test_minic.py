"""MiniC frontend tests: lexing, parsing, sema, lowering, execution."""

import pytest

from repro.frontend import (
    LexError,
    ParseError,
    SemaError,
    compile_minic,
    parse_source,
    tokenize,
)
from repro.ir import verify_module
from repro.profiling import run_module


def run_minic(source, func="main", args=(), intrinsics=None):
    module = compile_minic(source)
    verify_module(module)
    result, machine = run_module(
        module, func_name=func, args=list(args), intrinsics=intrinsics or {}
    )
    return result


# -- lexer ---------------------------------------------------------------


def test_tokenize_basic():
    tokens = tokenize("int x = 42; // comment\nfloat y = 1.5e3;")
    kinds = [(t.kind, t.text) for t in tokens if t.kind != "eof"]
    assert ("keyword", "int") in kinds
    assert ("int", "42") in kinds
    assert ("float", "1.5e3") in kinds
    assert ("op", ";") in kinds


def test_tokenize_multichar_ops():
    tokens = [t.text for t in tokenize("a <= b && c >> 2 != d")]
    assert "<=" in tokens and "&&" in tokens and ">>" in tokens and "!=" in tokens


def test_block_comments_track_lines():
    tokens = tokenize("/* line1\nline2 */ int x;")
    ident = [t for t in tokens if t.text == "x"][0]
    assert ident.line == 2


def test_lex_error_on_garbage():
    with pytest.raises(LexError):
        tokenize("int x = @;")


# -- parser -----------------------------------------------------------------


def test_parse_precedence():
    program = parse_source("int f() { return 1 + 2 * 3; }")
    ret = program.functions[0].body.stmts[0]
    assert ret.value.op == "+"
    assert ret.value.rhs.op == "*"


def test_parse_for_loop_parts():
    program = parse_source(
        "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    )
    for_stmt = program.functions[0].body.stmts[1]
    assert for_stmt.init is not None
    assert for_stmt.cond is not None
    assert for_stmt.step is not None


def test_parse_error_on_missing_semicolon():
    with pytest.raises(ParseError):
        parse_source("int f() { return 1 }")


def test_parse_dangling_else_binds_inner():
    program = parse_source(
        "int f(int a, int b) { if (a) if (b) return 1; else return 2; return 3; }"
    )
    outer = program.functions[0].body.stmts[0]
    assert outer.else_body is None
    inner = outer.then_body.stmts[0]
    assert inner.else_body is not None


# -- sema -------------------------------------------------------------------


def test_sema_rejects_undeclared_variable():
    with pytest.raises(SemaError):
        compile_minic("int f() { return x; }")


def test_sema_rejects_unindexed_array():
    with pytest.raises(SemaError):
        compile_minic("int f() { int a[4]; return a; }")


def test_sema_rejects_break_outside_loop():
    with pytest.raises(SemaError):
        compile_minic("int f() { break; return 0; }")


def test_sema_rejects_arity_mismatch():
    with pytest.raises(SemaError):
        compile_minic("int g(int a) { return a; } int f() { return g(1, 2); }")


def test_sema_rejects_duplicate_declaration():
    with pytest.raises(SemaError):
        compile_minic("int f() { int x = 1; int x = 2; return x; }")


def test_sema_void_return_value():
    with pytest.raises(SemaError):
        compile_minic("void f() { return 3; }")


# -- lowering + execution -----------------------------------------------------


def test_sum_loop():
    source = """
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    return s;
}
"""
    assert run_minic(source, args=[10]) == 45


def test_while_loop_and_compound_assign():
    source = """
int main(int n) {
    int x = 1;
    while (x < n) { x *= 2; }
    return x;
}
"""
    assert run_minic(source, args=[100]) == 128


def test_arrays_and_nested_loops():
    source = """
global int table[64];

int main(int n) {
    for (int i = 0; i < n; i++) {
        table[i] = i * i;
    }
    int best = 0;
    for (int i = 0; i < n; i++) {
        if (table[i] > best) { best = table[i]; }
    }
    return best;
}
"""
    assert run_minic(source, args=[9]) == 64


def test_break_and_continue():
    source = """
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        s += i;
    }
    return s;
}
"""
    # 1 + 3 + 5 + 7 + 9 = 25
    assert run_minic(source, args=[100]) == 25


def test_short_circuit_and():
    source = """
int safe_div(int a, int b) {
    if (b != 0 && a / b > 2) { return 1; }
    return 0;
}
int main() {
    return safe_div(10, 0) * 10 + safe_div(10, 3);
}
"""
    assert run_minic(source) == 1


def test_short_circuit_or():
    source = """
int main(int a, int b) {
    if (a == 0 || b / a > 1) { return 1; }
    return 0;
}
"""
    assert run_minic(source, args=[0, 5]) == 1
    assert run_minic(source, args=[2, 5]) == 1
    assert run_minic(source, args=[5, 5]) == 0


def test_function_calls_and_recursion_free_chain():
    source = """
int square(int x) { return x * x; }
int twice(int x) { return square(x) + square(x); }
int main(int n) { return twice(n); }
"""
    assert run_minic(source, args=[3]) == 18


def test_float_arithmetic():
    source = """
float main(int n) {
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        acc += 1.5;
    }
    return acc;
}
"""
    assert run_minic(source, args=[4]) == pytest.approx(6.0)


def test_float_promotion_on_assign():
    source = """
float main() {
    float x = 3;
    return x / 2;
}
"""
    assert run_minic(source) == pytest.approx(1.5)


def test_extern_intrinsics():
    source = """
extern int input_next(int i);
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += input_next(i); }
    return s;
}
"""
    result = run_minic(
        source, args=[5], intrinsics={"input_next": lambda m, i: i * 10}
    )
    assert result == 100


def test_loop_kind_annotations():
    module = compile_minic(
        """
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    int j = 0;
    while (j < n) { j += 1; }
    return s + j;
}
"""
    )
    func = module.function("main")
    kinds = {
        blk.annotations.get("loop_kind")
        for blk in func.blocks
        if blk.annotations
    }
    assert kinds == {"for", "while"}


def test_unary_operators():
    source = """
int main(int a) {
    int neg = -a;
    int inv = ~a;
    int nt = !a;
    return neg * 1000 + (inv + a + 1) * 100 + nt;
}
"""
    assert run_minic(source, args=[7]) == -7000
    assert run_minic(source, args=[0]) == 1


def test_global_arrays_shared_across_functions():
    source = """
global int acc[4];

void bump(int i) { acc[0] = acc[0] + i; }
int main(int n) {
    for (int i = 0; i < n; i++) { bump(i); }
    return acc[0];
}
"""
    assert run_minic(source, args=[5]) == 10


def test_modulo_and_shift_semantics():
    source = """
int main(int a, int b) {
    return (a % b) * 100 + (a << 2) + (a >> 1);
}
"""
    assert run_minic(source, args=[7, 3]) == 100 + 28 + 3
