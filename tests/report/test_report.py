"""Report formatting and a single-benchmark evaluation smoke test."""

import pytest

from repro.report.tables import arithmetic_mean, format_table, geometric_mean


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [("alpha", 1.5), ("b", 22.25)],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in lines[3]
    assert "1.500" in lines[3]
    assert "22.250" in lines[4]
    # Columns align: all data lines have equal width.
    assert len(lines[3]) == len(lines[4]) == len(lines[1])


def test_format_table_handles_ints_and_strings():
    text = format_table(["k", "v"], [("x", 3), (7, "y")])
    assert "x" in text and "3" in text and "7" in text and "y" in text


def test_means():
    assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert arithmetic_mean([]) == 0.0
    assert geometric_mean([]) == 0.0


def test_figure19_correlation_math():
    from repro.report.experiments import figure19_correlation

    # With no cached runs for a bogus config the function would fail,
    # so test the correlation helper through its public path instead.
    import repro.report.experiments as experiments

    class _FakeStats:
        def __init__(self, r):
            self.reexecution_ratio = r

    class _FakeLoop:
        def __init__(self, est, r):
            self.header = "h"
            self.estimated_cost_ratio = est
            self.stats = _FakeStats(r)

    class _FakeRun:
        def __init__(self, name, loops):
            self.name = name
            self.loops = loops

    original = experiments.evaluate_suite
    experiments.evaluate_suite = lambda config_name: [
        _FakeRun("a", [_FakeLoop(0.1, 0.08), _FakeLoop(0.3, 0.25)]),
        _FakeRun("b", [_FakeLoop(0.5, 0.4)]),
    ]
    try:
        corr = figure19_correlation("best")
        assert corr > 0.95  # perfectly monotone fake data
    finally:
        experiments.evaluate_suite = original
