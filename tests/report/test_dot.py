"""Graphviz dump tests: output must be well-formed dot and contain the
expected structure."""

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.costgraph import CostGraph, build_cost_graph
from repro.core.vcdep import VCDepGraph
from repro.core.violation import find_violation_candidates
from repro.ir import parse_module
from repro.report.dot import cfg_to_dot, costgraph_to_dot, depgraph_to_dot, vcdep_to_dot
from repro.ssa import build_ssa

SOURCE = """\
module t
func f(n) {
  local a[64]
entry:
  p = addr a
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  x = load p, i !a
  s = add s, x
  store p, i, s !a
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def _prepared():
    module = parse_module(SOURCE)
    func = module.function("f")
    build_ssa(func)
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    graph = build_dep_graph(module, func, loop)
    return func, graph


def _check_dot(text):
    assert text.startswith("digraph")
    assert text.rstrip().endswith("}")
    assert text.count("{") == text.count("}")


def test_cfg_dot():
    func, _ = _prepared()
    text = cfg_to_dot(func)
    _check_dot(text)
    for label in ("entry", "head", "body", "exit"):
        assert label in text
    assert '"head" -> "body"' in text


def test_depgraph_dot_marks_cross_edges():
    _, graph = _prepared()
    text = depgraph_to_dot(graph)
    _check_dot(text)
    assert "style=dashed" in text  # cross-iteration edges
    assert "color=red" in text


def test_costgraph_dot_has_pseudo_nodes():
    _, graph = _prepared()
    candidates = find_violation_candidates(graph)
    cg = build_cost_graph(graph, candidates)
    text = costgraph_to_dot(cg)
    _check_dot(text)
    assert "shape=ellipse" in text  # pseudo nodes
    assert "shape=box" in text


def test_costgraph_dot_from_hand_built_graph():
    cg = CostGraph()
    cg.add_pseudo("D", 1.0)
    cg.add_node("A", 1.0)
    cg.add_edge_from_pseudo("D", "A", 0.2)
    text = costgraph_to_dot(cg)
    _check_dot(text)
    assert "0.20" in text


def test_vcdep_dot():
    _, graph = _prepared()
    candidates = find_violation_candidates(graph)
    vcdep = VCDepGraph(graph, candidates)
    text = vcdep_to_dot(vcdep)
    _check_dot(text)
    assert "v0" in text
