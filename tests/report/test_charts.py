"""Terminal chart rendering tests."""

from repro.report.charts import bar_chart, grouped_bar_chart


def test_bar_chart_scales_to_max():
    text = bar_chart([("a", 1.0), ("b", 2.0)], width=10, fmt="{:.1f}")
    lines = text.splitlines()
    assert "1.0" in lines[0] and "2.0" in lines[1]
    # b's bar is full width, a's is half.
    assert lines[1].count("█") == 10
    assert 4 <= lines[0].count("█") <= 6


def test_bar_chart_baseline():
    text = bar_chart([("x", 1.0), ("y", 1.5)], baseline=1.0, width=8)
    lines = text.splitlines()
    assert lines[0].count("█") == 0  # at baseline: empty bar
    assert lines[1].count("█") == 8


def test_bar_chart_empty():
    assert bar_chart([], title="t") == "t"


def test_grouped_bar_chart_structure():
    text = grouped_bar_chart(
        [("p1", [1.0, 1.2]), ("p2", [1.1, 1.4])],
        series=["basic", "best"],
        baseline=1.0,
        width=8,
    )
    assert "p1" in text and "p2" in text
    assert text.count("basic") == 2
    assert text.count("best") == 2


def test_negative_values_clamped():
    text = bar_chart([("low", -1.0), ("high", 3.0)], width=6)
    lines = text.splitlines()
    assert lines[0].count("█") == 0
    assert lines[1].count("█") == 6
