"""End-to-end checks that the two fast paths (block-compiled
interpreter, incremental cost evaluation) are pure optimizations: the
full SPT compilation pipeline produces the same decisions and the same
report with either implementation selected."""

import pytest

from repro.benchsuite import SUITE
from repro.core import Workload, best_config, compile_spt
from repro.frontend import compile_minic


def _strip_stats(report):
    """Drop fields that legitimately differ between evaluator
    implementations (work counters), keep every decision field."""
    report = dict(report)
    for cand in report.get("candidates", ()):
        for key in ("cost_evaluations", "cost_cache_hit_rate", "cost_node_visits"):
            cand.pop(key, None)
    return report


@pytest.mark.parametrize("bench", SUITE[:4], ids=lambda b: b.name)
def test_fast_and_slow_paths_agree(bench):
    base = best_config()
    reports = []
    for fast_interp, incremental in ((True, True), (False, False)):
        module = compile_minic(bench.source, name=bench.name)
        config = base.with_overrides(
            fast_interp=fast_interp, incremental_cost=incremental
        )
        result = compile_spt(module, config, Workload(args=(bench.train_n,)))
        reports.append(_strip_stats(result.to_dict()))
    assert reports[0] == reports[1]


def test_flag_combinations_smoke():
    bench = SUITE[0]
    base = best_config()
    costs = set()
    for fast_interp in (True, False):
        for incremental in (True, False):
            module = compile_minic(bench.source, name=bench.name)
            config = base.with_overrides(
                fast_interp=fast_interp, incremental_cost=incremental
            )
            result = compile_spt(module, config, Workload(args=(bench.train_n,)))
            costs.add(
                tuple(
                    (cand["function"], cand["header"], cand["misspeculation_cost"])
                    for cand in result.to_dict()["candidates"]
                    if "misspeculation_cost" in cand
                )
            )
    assert len(costs) == 1
