"""CLI tests (driving main() directly; stdout via capsys)."""

import pytest

from repro.cli import main

PROGRAM = """
global int data[256];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = (i * 37) & 255;
        data[x] = data[x] + 1;
        s += x & 7;
    }
    return s;
}
"""

IR_PROGRAM = """\
module tiny
func main(n) {
entry:
  s = copy 0
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  s = add s, i
  i = add i, 1
  jump head
exit:
  ret s
}
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def ir_file(tmp_path):
    path = tmp_path / "prog.ir"
    path.write_text(IR_PROGRAM)
    return str(path)


def test_run_minic(minic_file, capsys):
    assert main(["run", minic_file, "--args", "16"]) == 0
    out = capsys.readouterr().out
    assert "result:" in out


def test_run_with_timing(minic_file, capsys):
    assert main(["run", minic_file, "--args", "100", "--timing"]) == 0
    out = capsys.readouterr().out
    assert "IPC:" in out
    assert "cycles:" in out


def test_run_textual_ir(ir_file, capsys):
    assert main(["run", ir_file, "--args", "10"]) == 0
    assert "result: 45" in capsys.readouterr().out


def test_dump_ir_roundtrips(minic_file, capsys):
    assert main(["dump-ir", minic_file]) == 0
    text = capsys.readouterr().out
    from repro.ir import parse_module

    module = parse_module(text)
    assert "main" in module.functions


def test_dump_ir_ssa(minic_file, capsys):
    assert main(["dump-ir", minic_file, "--ssa", "--optimize"]) == 0
    text = capsys.readouterr().out
    assert "phi" in text


def test_compile_reports_candidates(minic_file, capsys):
    assert main(["compile", minic_file, "--args", "200", "--config", "best"]) == 0
    out = capsys.readouterr().out
    assert "loop candidates:" in out
    assert "selected SPT loops:" in out


def test_compile_emit_ir_contains_fork(minic_file, capsys):
    assert main(
        ["compile", minic_file, "--args", "200", "--emit-ir"]
    ) == 0
    out = capsys.readouterr().out
    if "selected SPT loops: []" not in out:
        assert "spt_fork" in out


def test_simulate(minic_file, capsys):
    code = main(["simulate", minic_file, "--args", "400", "--train-args", "150"])
    out = capsys.readouterr().out
    if code == 0:
        assert "speedup" in out
    else:
        assert "no SPT loops" in out


def test_simulate_selects_and_reports_speedup(minic_file, capsys):
    """With a big enough workload the demo loop is selected, and the
    machine model prints per-loop and whole-program speedups."""
    assert main(
        ["simulate", minic_file, "--args", "600", "--train-args", "200"]
    ) == 0
    out = capsys.readouterr().out
    assert "result:" in out
    assert "single-core cycles:" in out
    assert "speedup" in out
    assert "program SPT cycles:" in out


def test_simulate_exit_code_when_nothing_selected(ir_file, capsys):
    """The tiny IR loop falls below the body-size floor: simulate must
    say so and exit non-zero."""
    assert main(["simulate", ir_file, "--args", "4"]) == 1
    assert "no SPT loops" in capsys.readouterr().out


def test_report_rejects_unknown_target(capsys):
    assert main(["report", "figNOPE"]) == 2
    assert "unknown report target" in capsys.readouterr().err


def test_report_runs_requested_targets(monkeypatch, capsys):
    """`repro report` dispatches to the named generators in order.

    The real generators run the full benchmark suite (minutes), so they
    are stubbed; dispatch, ordering and output plumbing are what this
    exercises.
    """
    import repro.report as report_mod

    for name in (
        "table1_text", "figure14_text", "figure15_text", "figure16_text",
        "figure17_text", "figure18_text", "figure19_text",
    ):
        tag = name.replace("_text", "").replace("figure", "fig")
        monkeypatch.setattr(
            report_mod, name, lambda tag=tag: f"<{tag} output>"
        )
    assert main(["report", "fig15", "table1"]) == 0
    out = capsys.readouterr().out
    assert "<fig15 output>" in out
    assert "<table1 output>" in out
    assert out.index("<fig15 output>") < out.index("<table1 output>")
    assert "<fig14 output>" not in out

    assert main(["report"]) == 0  # no targets = all of them
    out = capsys.readouterr().out
    for tag in ("table1", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19"):
        assert f"<{tag} output>" in out


def test_dot_subcommand(minic_file, capsys):
    for what in ("cfg", "depgraph", "costgraph", "vcdep"):
        assert main(["dot", minic_file, what]) == 0, what
        out = capsys.readouterr().out
        assert out.startswith("digraph"), what


def test_summary_subcommand_emits_json(minic_file, capsys):
    import json

    assert main(["summary", minic_file, "--args", "100"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "candidates" in payload
    assert "categories" in payload
    assert isinstance(payload["selected"], list)


def test_fast_path_opt_out_flags(minic_file, capsys):
    """--no-fast-interp/--no-incremental-cost select the reference
    implementations but do not change any compilation decision."""
    import json

    assert main(["summary", minic_file, "--args", "100"]) == 0
    fast = json.loads(capsys.readouterr().out)
    assert main(
        [
            "summary", minic_file, "--args", "100",
            "--no-fast-interp", "--no-incremental-cost",
        ]
    ) == 0
    slow = json.loads(capsys.readouterr().out)

    def strip(report):
        for cand in report["candidates"]:
            for key in (
                "cost_evaluations", "cost_cache_hit_rate", "cost_node_visits"
            ):
                cand.pop(key, None)
        return report

    assert strip(fast) == strip(slow)


def test_compile_accepts_opt_out_flags(minic_file, capsys):
    assert main(["compile", minic_file, "--args", "64", "--no-fast-interp"]) == 0
    assert "loop candidates" in capsys.readouterr().out


def test_compile_trace_out_is_valid_chrome_trace(minic_file, tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    assert main(
        ["compile", minic_file, "--args", "200", "--trace-out", str(trace)]
    ) == 0
    capsys.readouterr()
    document = json.loads(trace.read_text())
    names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
    assert {"unroll", "ssa", "profile", "pass1", "selection", "transform"} <= names


def test_compile_log_out_and_summary(minic_file, tmp_path, capsys):
    import json

    log = tmp_path / "run.jsonl"
    assert main(
        [
            "compile", minic_file, "--args", "200",
            "--log-out", str(log), "--obs-summary",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "telemetry: spans" in out
    assert "telemetry: counters" in out
    records = [json.loads(line) for line in log.read_text().splitlines()]
    assert {"span", "counter"} <= {r["type"] for r in records}


def test_simulate_log_out_records_spt_rounds(minic_file, tmp_path, capsys):
    import json

    log = tmp_path / "sim.jsonl"
    code = main(
        [
            "simulate", minic_file, "--args", "600", "--train-args", "200",
            "--log-out", str(log),
        ]
    )
    capsys.readouterr()
    assert code == 0
    records = [json.loads(line) for line in log.read_text().splitlines()]
    rounds = [
        r for r in records if r["type"] == "event" and r["name"] == "spt.round"
    ]
    assert rounds
    assert {"loop", "round", "committed", "reexec_ops"} <= set(rounds[0]["attrs"])


def test_explain_reports_rejection_criteria(minic_file, capsys):
    assert main(["explain", minic_file, "--args", "200"]) == 0
    out = capsys.readouterr().out
    assert "loop candidates" in out
    assert "verdict" in out
    # At least one loop is explained with body size and thresholds.
    assert "body size" in out
    assert "selectable range" in out


def test_explain_loop_filter_and_unknown_loop(minic_file, capsys):
    assert main(["explain", minic_file, "--args", "200", "--loop", "zz:nope"]) == 0
    assert "no loop candidate" in capsys.readouterr().out
