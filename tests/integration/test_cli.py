"""CLI tests (driving main() directly; stdout via capsys)."""

import pytest

from repro.cli import main

PROGRAM = """
global int data[256];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = (i * 37) & 255;
        data[x] = data[x] + 1;
        s += x & 7;
    }
    return s;
}
"""

IR_PROGRAM = """\
module tiny
func main(n) {
entry:
  s = copy 0
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  s = add s, i
  i = add i, 1
  jump head
exit:
  ret s
}
"""


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def ir_file(tmp_path):
    path = tmp_path / "prog.ir"
    path.write_text(IR_PROGRAM)
    return str(path)


def test_run_minic(minic_file, capsys):
    assert main(["run", minic_file, "--args", "16"]) == 0
    out = capsys.readouterr().out
    assert "result:" in out


def test_run_with_timing(minic_file, capsys):
    assert main(["run", minic_file, "--args", "100", "--timing"]) == 0
    out = capsys.readouterr().out
    assert "IPC:" in out
    assert "cycles:" in out


def test_run_textual_ir(ir_file, capsys):
    assert main(["run", ir_file, "--args", "10"]) == 0
    assert "result: 45" in capsys.readouterr().out


def test_dump_ir_roundtrips(minic_file, capsys):
    assert main(["dump-ir", minic_file]) == 0
    text = capsys.readouterr().out
    from repro.ir import parse_module

    module = parse_module(text)
    assert "main" in module.functions


def test_dump_ir_ssa(minic_file, capsys):
    assert main(["dump-ir", minic_file, "--ssa", "--optimize"]) == 0
    text = capsys.readouterr().out
    assert "phi" in text


def test_compile_reports_candidates(minic_file, capsys):
    assert main(["compile", minic_file, "--args", "200", "--config", "best"]) == 0
    out = capsys.readouterr().out
    assert "loop candidates:" in out
    assert "selected SPT loops:" in out


def test_compile_emit_ir_contains_fork(minic_file, capsys):
    assert main(
        ["compile", minic_file, "--args", "200", "--emit-ir"]
    ) == 0
    out = capsys.readouterr().out
    if "selected SPT loops: []" not in out:
        assert "spt_fork" in out


def test_simulate(minic_file, capsys):
    code = main(["simulate", minic_file, "--args", "400", "--train-args", "150"])
    out = capsys.readouterr().out
    if code == 0:
        assert "speedup" in out
    else:
        assert "no SPT loops" in out


def test_report_rejects_unknown_target(capsys):
    assert main(["report", "figNOPE"]) == 2
    assert "unknown report target" in capsys.readouterr().err


def test_dot_subcommand(minic_file, capsys):
    for what in ("cfg", "depgraph", "costgraph", "vcdep"):
        assert main(["dot", minic_file, what]) == 0, what
        out = capsys.readouterr().out
        assert out.startswith("digraph"), what


def test_summary_subcommand_emits_json(minic_file, capsys):
    import json

    assert main(["summary", minic_file, "--args", "100"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "candidates" in payload
    assert "categories" in payload
    assert isinstance(payload["selected"], list)


def test_fast_path_opt_out_flags(minic_file, capsys):
    """--no-fast-interp/--no-incremental-cost select the reference
    implementations but do not change any compilation decision."""
    import json

    assert main(["summary", minic_file, "--args", "100"]) == 0
    fast = json.loads(capsys.readouterr().out)
    assert main(
        [
            "summary", minic_file, "--args", "100",
            "--no-fast-interp", "--no-incremental-cost",
        ]
    ) == 0
    slow = json.loads(capsys.readouterr().out)

    def strip(report):
        for cand in report["candidates"]:
            for key in (
                "cost_evaluations", "cost_cache_hit_rate", "cost_node_visits"
            ):
                cand.pop(key, None)
        return report

    assert strip(fast) == strip(slow)


def test_compile_accepts_opt_out_flags(minic_file, capsys):
    assert main(["compile", minic_file, "--args", "64", "--no-fast-interp"]) == 0
    assert "loop candidates" in capsys.readouterr().out
