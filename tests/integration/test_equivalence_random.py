"""End-to-end equivalence fuzzing: random MiniC loop programs compiled
with the full SPT pipeline must compute exactly what the original does
(results and memory), under every compiler configuration.

This is the strongest correctness property in the suite: it covers the
frontend, SSA, unrolling, the partition search, the SPT transformation
(code motion, branch replication, SSA repair), and SVP in one go.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SptConfig,
    Workload,
    anticipated_config,
    basic_config,
    best_config,
    compile_spt,
)
from repro.frontend import compile_minic
from repro.profiling import run_module

#: Statement templates over scalars s0..s3, arrays A/B, and index i.
_STMTS = [
    "s0 += A[i & 255];",
    "s1 = (s1 * 3 + i) & 4095;",
    "B[i & 255] = s0 + s1;",
    "s2 = A[(i * 7) & 255] ^ s2;",
    "if (s0 > s1) { s3 += 1; } else { s3 -= 1; }",
    "if ((i & 3) == 0) { s2 = s2 + 5; }",
    "A[(i + 1) & 255] = (s2 * 5) & 1023;",
    "s0 = (s0 + s2) & 65535;",
    "s3 = (s3 << 1) ^ (s3 >> 2);",
    "B[(s1 & 255)] = B[(s1 & 255)] + 1;",
    "s1 += helper(s2);",
]

_TEMPLATE = """
global int A[256] aliased;
global int B[256];

int helper(int x) {{
    return (x * 3 + 1) & 255;
}}

int main(int n) {{
    for (int k = 0; k < 256; k++) {{
        A[k] = (k * 37) & 1023;
    }}
    int s0 = 0;
    int s1 = 1;
    int s2 = 2;
    int s3 = 3;
    for (int i = 0; i < n; i++) {{
{body}
    }}
    return (s0 & 65535) + (s1 & 4095) + (s2 & 1023) + (s3 & 255) + B[3];
}}
"""


def _build_source(stmt_indices) -> str:
    body = "\n".join(f"        {_STMTS[index]}" for index in stmt_indices)
    return _TEMPLATE.format(body=body)


configs = st.sampled_from(
    [
        ("basic", basic_config),
        ("best", best_config),
        ("anticipated", anticipated_config),
        ("eager", lambda: SptConfig(prefork_fraction=0.95, cost_fraction=0.9,
                                    min_body_size=2, selection_margin=2.0)),
    ]
)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, len(_STMTS) - 1), min_size=2, max_size=6),
    configs,
    st.integers(0, 60),
)
def test_random_loop_program_equivalence(stmt_indices, named_config, n):
    source = _build_source(stmt_indices)
    config_name, config_factory = named_config

    module = compile_minic(source)
    baseline = compile_minic(source)
    compile_spt(module, config_factory(), Workload(entry="main", args=(40,)))

    got, machine_new = run_module(module, args=[n])
    want, machine_old = run_module(baseline, args=[n])
    assert got == want, (config_name, stmt_indices, n)

    # Global memory must agree exactly (local statics may differ in
    # layout, so compare the shared global regions).
    for sym in ("A", "B"):
        base_new = machine_new.symbols[sym]
        base_old = machine_old.symbols[sym]
        got_mem = machine_new.memory[base_new : base_new + 256]
        want_mem = machine_old.memory[base_old : base_old + 256]
        assert got_mem == want_mem, (config_name, sym, stmt_indices, n)
