"""End-to-end two-pass compilation tests: MiniC source -> unroll -> SSA
-> profile -> cost-driven partition -> selection -> SPT transformation,
with semantic equivalence checked by execution."""

import pytest

from repro.core import SptConfig, Workload, basic_config, best_config, compile_spt
from repro.core.selection import CATEGORY_VALID
from repro.frontend import compile_minic
from repro.profiling import run_module

SOURCE = """
global int data[4096];
global int out[4096];

int main(int n) {
    int seed = 12345;
    for (int i = 0; i < n; i++) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        data[i] = seed % 1000;
    }
    int total = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i];
        int a = x * 3 + 7;
        int b = a * a + x;
        int c = b * 5 + 11;
        int d = c * c + b;
        int e = d * 3 + c;
        int f = e * e + d;
        out[i] = f;
        total += f % 97;
    }
    return total;
}
"""


def _compile(config, n=300):
    module = compile_minic(SOURCE)
    workload = Workload(entry="main", args=(n,))
    result = compile_spt(module, config, workload)
    return module, result


def test_pipeline_selects_the_parallel_loop():
    module, result = _compile(SptConfig())
    assert len(result.candidates) >= 2
    assert result.selected, "expected at least one SPT loop"
    histogram = result.category_histogram()
    assert histogram[CATEGORY_VALID] >= 1


def test_transformed_module_is_semantically_equivalent():
    module, result = _compile(SptConfig())
    assert result.spt_loops
    baseline = compile_minic(SOURCE)
    for n in (0, 1, 7, 123, 300):
        got, machine_new = run_module(module, args=[n])
        want, machine_old = run_module(baseline, args=[n])
        assert got == want, n


def test_spt_markers_present_after_compilation():
    module, result = _compile(SptConfig())
    opcodes = {
        instr.opcode
        for func in module.functions.values()
        for instr in func.instructions()
    }
    assert "spt_fork" in opcodes
    assert "spt_kill" in opcodes


def test_unprofitable_serial_loop_not_selected():
    source = """
int main(int n) {
    int acc = 1;
    for (int i = 0; i < n; i++) {
        acc = (acc * 7 + i) % 1000003;
    }
    return acc;
}
"""
    module = compile_minic(source)
    result = compile_spt(module, SptConfig(), Workload(args=(300,)))
    # The whole body is one recurrence: cost ~ body size, so selection
    # must refuse it.
    for candidate in result.selected:
        assert candidate.partition.cost_ratio < 0.2


def test_basic_vs_best_config_coverage():
    """Dependence profiling + SVP can only widen the set of loops the
    compiler accepts."""
    _, result_basic = _compile(basic_config())
    _, result_best = _compile(best_config())
    assert len(result_best.selected) >= len(result_basic.selected)


def test_best_config_equivalence_with_svp():
    source = """
global int buf[2048];
extern int observe(int v);

int main(int n) {
    int cursor = 0;
    for (int i = 0; i < n; i++) {
        int x = buf[cursor];
        int a = x * 3 + i;
        int b = a * a;
        int c = b + x * 7;
        int d = c * c + a;
        buf[cursor] = d % 251;
        cursor = (cursor + 2) % 2048;
        observe(d);
    }
    return cursor;
}
"""
    sink = {"observe": lambda machine, v: 0}
    module = compile_minic(source)
    workload = Workload(args=(200,), intrinsics=sink)
    result = compile_spt(module, best_config(), workload)
    baseline = compile_minic(source)
    for n in (0, 5, 200):
        got, _ = run_module(module, args=[n], intrinsics=sink)
        want, _ = run_module(baseline, args=[n], intrinsics=sink)
        assert got == want, n


def test_while_loop_only_unrolled_in_anticipated():
    source = """
int main(int n) {
    int x = 0;
    int i = 0;
    while (i < n) {
        x += i % 7;
        i++;
    }
    return x;
}
"""
    from repro.core import anticipated_config

    module = compile_minic(source)
    result = compile_spt(module, basic_config(), Workload(args=(100,)))
    report = result.unroll_reports["main"]
    assert report.skipped_while

    module2 = compile_minic(source)
    result2 = compile_spt(module2, anticipated_config(), Workload(args=(100,)))
    report2 = result2.unroll_reports["main"]
    assert report2.unrolled
    got, _ = run_module(module2, args=[100])
    assert got == sum(i % 7 for i in range(100))
