"""Dependence graph construction tests."""

import math

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.analysis.loopsummary import LoopSummary
from repro.ir import parse_module
from repro.ssa import build_ssa


def _prep(source, func_name="f"):
    module = parse_module(source)
    func = module.function(func_name)
    build_ssa(func)
    nest = LoopNest.build(func)
    return module, func, nest


MEMORY = """\
module t
func f(n) {
  local a[64]
  local b[64]
entry:
  pa = addr a
  pb = addr b
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  x = load pa, i !a
  y = add x, 1
  store pb, i, y !b
  i = add i, 1
  jump head
exit:
  ret 0
}
"""


def test_distinct_arrays_do_not_alias():
    module, func, nest = _prep(MEMORY)
    graph = build_dep_graph(module, func, nest.loops[0])
    mem_edges = [e for e in graph.edges if e.carrier == "mem"]
    # load !a and store !b never alias: no memory edges at all.
    assert mem_edges == []


RECURRENCE = """\
module t
func f(n) {
  local a[64]
entry:
  pa = addr a
  i = copy 1
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  prev = sub i, 1
  x = load pa, prev !a
  y = add x, 1
  store pa, i, y !a
  i = add i, 1
  jump head
exit:
  ret 0
}
"""


def test_same_array_gets_cross_and_intra_edges():
    module, func, nest = _prep(RECURRENCE)
    graph = build_dep_graph(module, func, nest.loops[0])
    cross_mem = [
        e for e in graph.cross_true_edges() if e.carrier == "mem"
    ]
    assert len(cross_mem) == 1
    assert cross_mem[0].src.opcode == "store"
    assert cross_mem[0].dst.opcode == "load"
    assert math.isclose(cross_mem[0].prob, 0.5)  # static default
    anti = [e for e in graph.edges if e.kind == "anti"]
    assert len(anti) == 1  # load before store, same array


def test_profiled_probabilities_override_static(tmp_path):
    from repro.profiling import DependenceProfile, run_module

    module = parse_module(RECURRENCE)
    profile = DependenceProfile(module)
    run_module(module, func_name="f", args=[50], tracers=[profile])

    func = module.function("f")
    build_ssa(func)
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    view = profile.view("f", loop)
    graph = build_dep_graph(module, func, loop, dep_profile=view)
    cross_mem = [e for e in graph.cross_true_edges() if e.carrier == "mem"]
    assert len(cross_mem) == 1
    assert cross_mem[0].prob > 0.9  # measured: always realized


NESTED = """\
module t
func f(n, m) {
  local acc[8]
entry:
  p = addr acc
  i = copy 0
  s = copy 0
  jump outer
outer:
  c0 = lt i, n
  br c0, obody, done
obody:
  j = copy 0
  t = copy 0
  jump inner
inner:
  c1 = lt j, m
  br c1, ibody, after
ibody:
  t = add t, j
  j = add j, 1
  jump inner
after:
  s = add s, t
  store p, 0, s !acc
  i = add i, 1
  jump outer
done:
  ret s
}
"""


def test_inner_loop_is_contracted_to_summary():
    module, func, nest = _prep(NESTED)
    outer = next(l for l in nest.loops if l.header == "outer")
    graph = build_dep_graph(module, func, outer)
    assert len(graph.summaries) == 1
    summary = graph.summaries["inner"]
    assert isinstance(summary, LoopSummary)
    assert summary in graph.info
    # The inner loop's result t feeds s = add s, t after the loop.
    users = [
        e.dst for e in graph.out_edges.get(summary, []) if e.kind == "true"
    ]
    assert any(
        getattr(u, "dest", None) is not None and u.dest.base == "s"
        for u in users
    )


def test_summary_cost_scales_with_trip_count():
    module, func, nest = _prep(NESTED)
    outer = next(l for l in nest.loops if l.header == "outer")
    graph = build_dep_graph(module, func, outer)
    summary = graph.summaries["inner"]
    assert summary.cost > 10  # body ops times assumed trip count


def test_inner_loop_body_instrs_absent_from_outer_graph():
    module, func, nest = _prep(NESTED)
    outer = next(l for l in nest.loops if l.header == "outer")
    inner = next(l for l in nest.loops if l.header == "inner")
    graph = build_dep_graph(module, func, outer)
    inner_instrs = {
        id(instr) for blk in inner.blocks(func) for instr in blk.instrs
    }
    for node in graph.info:
        assert id(node) not in inner_instrs


def test_after_inner_loop_blocks_keep_full_reach():
    module, func, nest = _prep(NESTED)
    outer = next(l for l in nest.loops if l.header == "outer")
    graph = build_dep_graph(module, func, outer)
    after_instrs = [
        info for info in graph.info.values() if info.block == "after"
    ]
    assert after_instrs
    for info in after_instrs:
        assert math.isclose(info.reach, 1.0)


CONTROL = """\
module t
func f(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  m = mod i, 2
  z = eq m, 0
  br z, even, odd
even:
  s = add s, 10
  jump latch
odd:
  s = add s, 1
  jump latch
latch:
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def test_control_edges_attach_guarded_statements():
    module, func, nest = _prep(CONTROL)
    graph = build_dep_graph(module, func, nest.loops[0])
    ctrl_edges = [e for e in graph.edges if e.kind == "control"]
    guarded_blocks = {graph.info[e.dst].block for e in ctrl_edges}
    assert {"even", "odd"} <= guarded_blocks
    for e in ctrl_edges:
        assert graph.info[e.src].block == "body"


def test_conditional_blocks_have_half_reach():
    module, func, nest = _prep(CONTROL)
    graph = build_dep_graph(module, func, nest.loops[0])
    even_info = [i for i in graph.info.values() if i.block == "even"]
    assert even_info
    assert math.isclose(even_info[0].reach, 0.5)
    latch_info = [i for i in graph.info.values() if i.block == "latch"]
    assert math.isclose(latch_info[0].reach, 1.0)
