"""Control dependence over loop bodies (FOW / post-dominators)."""

from repro.analysis.controldep import compute_control_deps, immediate_postdominators
from repro.analysis.loops import LoopNest
from repro.ir import parse_function

NESTED_IF = """\
func f(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  c1 = gt s, 10
  br c1, outer_then, latch
outer_then:
  c2 = gt s, 100
  br c2, inner_then, outer_join
inner_then:
  s = add s, 1
  jump outer_join
outer_join:
  s = add s, 2
  jump latch
latch:
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def _loop_and_func():
    func = parse_function(NESTED_IF)
    nest = LoopNest.build(func)
    return func, nest.loops[0]


def test_unconditional_blocks_have_no_deps():
    func, loop = _loop_and_func()
    deps = compute_control_deps(func, loop)
    # body and latch run every iteration (modulo the header test).
    assert set(deps.controlling_branches("latch")) <= {"head"}
    assert set(deps.controlling_branches("body")) <= {"head"}


def test_nested_control_dependences():
    func, loop = _loop_and_func()
    deps = compute_control_deps(func, loop)
    assert "body" in deps.controlling_branches("outer_then")
    assert "outer_then" in deps.controlling_branches("inner_then")
    # The join after the outer if depends on the outer branch only.
    assert "body" in deps.controlling_branches("outer_join")
    assert "outer_then" not in deps.controlling_branches("outer_join")


def test_is_conditional():
    func, loop = _loop_and_func()
    deps = compute_control_deps(func, loop)
    assert deps.is_conditional("inner_then")
    assert deps.is_conditional("outer_then")


def test_immediate_postdominators():
    func, loop = _loop_and_func()
    ipdom = immediate_postdominators(func, loop)
    assert ipdom["outer_then"] == "outer_join"
    assert ipdom["inner_then"] == "outer_join"
    assert ipdom["outer_join"] == "latch"
    # The latch's only successor leaves the body (virtual exit -> None).
    assert ipdom["latch"] is None
