"""Alias analysis unit tests."""

from repro.analysis.alias import access_syms, may_alias, same_location
from repro.ir import parse_module


def _module():
    return parse_module(
        """\
module t
global shared[64]
global escaping[64] escapes
func f(p) {
  local priv[32]
entry:
  a = addr shared
  b = addr priv
  x = load a, 0 !shared
  y = load b, 0 !priv
  z = load a, 1 !shared
  w = load p, 0
  q = load a, 0 !escaping
  store a, 0, x !shared
  call helper(x)
  u = call pure hash(x)
  ret x
}
"""
    )


def _ops(module):
    func = module.function("f")
    by_kind = {}
    loads = [i for i in func.instructions() if i.opcode == "load"]
    by_kind["load_shared0"] = loads[0]
    by_kind["load_priv"] = loads[1]
    by_kind["load_shared1"] = loads[2]
    by_kind["load_unknown"] = loads[3]
    by_kind["load_escaping"] = loads[4]
    by_kind["store_shared0"] = next(
        i for i in func.instructions() if i.opcode == "store"
    )
    calls = [i for i in func.instructions() if i.opcode == "call"]
    by_kind["call_impure"] = calls[0]
    by_kind["call_pure"] = calls[1]
    return func, by_kind


def test_distinct_nonescaping_symbols_do_not_alias():
    module = _module()
    func, ops = _ops(module)
    assert not may_alias(module, func, ops["load_shared0"], ops["load_priv"])


def test_same_symbol_distinct_const_offsets_do_not_alias():
    module = _module()
    func, ops = _ops(module)
    assert not may_alias(module, func, ops["load_shared0"], ops["load_shared1"])
    assert may_alias(module, func, ops["load_shared0"], ops["store_shared0"])


def test_unknown_pointer_aliases_everything():
    module = _module()
    func, ops = _ops(module)
    assert may_alias(module, func, ops["load_unknown"], ops["load_priv"])
    assert may_alias(module, func, ops["load_unknown"], ops["load_shared0"])


def test_escaping_symbol_is_conservative():
    module = _module()
    func, ops = _ops(module)
    assert may_alias(module, func, ops["load_escaping"], ops["load_priv"])


def test_impure_call_aliases_memory_ops():
    module = _module()
    func, ops = _ops(module)
    assert may_alias(module, func, ops["call_impure"], ops["load_shared0"])
    assert may_alias(module, func, ops["call_impure"], ops["call_impure"])


def test_pure_call_aliases_nothing():
    module = _module()
    func, ops = _ops(module)
    assert not may_alias(module, func, ops["call_pure"], ops["load_shared0"])
    assert not may_alias(module, func, ops["call_pure"], ops["call_impure"])
    assert access_syms(ops["call_pure"]) == set()


def test_same_location():
    module = _module()
    func, ops = _ops(module)
    assert same_location(ops["load_shared0"], ops["store_shared0"])
    assert not same_location(ops["load_shared0"], ops["load_shared1"])
    assert not same_location(ops["load_unknown"], ops["load_unknown"])
