"""Dominator tree and dominance frontier tests."""

from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.ir import parse_function

DIAMOND = """\
func diamond(x) {
entry:
  c = lt x, 10
  br c, left, right
left:
  a = add x, 1
  jump join
right:
  b = add x, 2
  jump join
join:
  ret x
}
"""

LOOP = """\
func looped(n) {
entry:
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  i = add i, 1
  jump head
exit:
  ret i
}
"""


def test_diamond_idoms():
    func = parse_function(DIAMOND)
    domtree = DominatorTree.build(func)
    assert domtree.idom["entry"] is None
    assert domtree.idom["left"] == "entry"
    assert domtree.idom["right"] == "entry"
    assert domtree.idom["join"] == "entry"


def test_diamond_frontiers():
    func = parse_function(DIAMOND)
    domtree = DominatorTree.build(func)
    frontiers = domtree.dominance_frontiers()
    assert frontiers["left"] == {"join"}
    assert frontiers["right"] == {"join"}
    assert frontiers["entry"] == set()


def test_loop_idoms_and_frontier():
    func = parse_function(LOOP)
    domtree = DominatorTree.build(func)
    assert domtree.idom["head"] == "entry"
    assert domtree.idom["body"] == "head"
    assert domtree.idom["exit"] == "head"
    frontiers = domtree.dominance_frontiers()
    assert frontiers["body"] == {"head"}
    assert frontiers["head"] == {"head"}


def test_dominates_is_reflexive_and_transitive():
    func = parse_function(LOOP)
    domtree = DominatorTree.build(func)
    for label in ("entry", "head", "body", "exit"):
        assert domtree.dominates(label, label)
    assert domtree.dominates("entry", "body")
    assert not domtree.dominates("body", "exit")
    assert domtree.strictly_dominates("entry", "exit")
    assert not domtree.strictly_dominates("entry", "entry")


def test_reverse_postorder_starts_at_entry():
    func = parse_function(LOOP)
    cfg = CFG.build(func)
    rpo = cfg.reverse_postorder()
    assert rpo[0] == "entry"
    assert set(rpo) == {"entry", "head", "body", "exit"}
    assert rpo.index("head") < rpo.index("body")


def test_back_edge_detection():
    func = parse_function(LOOP)
    cfg = CFG.build(func)
    assert cfg.back_edges() == [("body", "head")]
