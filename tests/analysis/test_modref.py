"""Interprocedural mod/ref summary tests."""

from repro.analysis.modref import ModRefSummaries
from repro.ir import parse_module

SOURCE = """\
module t
global shared[16]
global other[16]

func reader() {
entry:
  p = addr shared
  v = load p, 0 !shared
  ret v
}
func writer(v) {
entry:
  p = addr other
  store p, 0, v !other
  ret 0
}
func wrapper(v) {
entry:
  r = call writer(v)
  ret r
}
func pure_math(x) {
entry:
  y = mul x, x
  ret y
}
func calls_unknown() {
entry:
  x = call mystery()
  ret x
}
func main() {
entry:
  a = call reader()
  b = call wrapper(a)
  c = call pure_math(b)
  ret c
}
"""


def test_direct_reads_and_writes():
    module = parse_module(SOURCE)
    summaries = ModRefSummaries(module)
    assert summaries.reads["reader"] == {"shared"}
    assert summaries.writes["reader"] == set()
    assert summaries.writes["writer"] == {"other"}


def test_transitive_propagation():
    module = parse_module(SOURCE)
    summaries = ModRefSummaries(module)
    assert summaries.writes["wrapper"] == {"other"}
    assert summaries.writes["main"] == {"other"}
    assert "shared" in summaries.reads["main"]


def test_pure_computation_has_empty_summary():
    module = parse_module(SOURCE)
    summaries = ModRefSummaries(module)
    assert summaries.reads["pure_math"] == set()
    assert summaries.writes["pure_math"] == set()


def test_unknown_callee_poisons_summary():
    module = parse_module(SOURCE)
    summaries = ModRefSummaries(module)
    assert None in summaries.reads["calls_unknown"]
    assert None in summaries.writes["calls_unknown"]


def test_call_alias_query_uses_summary():
    module = parse_module(SOURCE)
    summaries = ModRefSummaries(module)
    main = module.function("main")
    reader_call = main.block("entry").instrs[0]
    wrapper_call = main.block("entry").instrs[1]
    pure_call = main.block("entry").instrs[2]
    # reader touches `shared`, wrapper touches `other`: disjoint.
    assert not summaries.may_alias(main, reader_call, wrapper_call)
    # pure_math touches nothing.
    assert not summaries.may_alias(main, pure_call, reader_call)
    # both touch `shared` -> alias.
    assert summaries.may_alias(main, reader_call, reader_call)


def test_call_read_write_flags():
    module = parse_module(SOURCE)
    summaries = ModRefSummaries(module)
    main = module.function("main")
    reader_call = main.block("entry").instrs[0]
    wrapper_call = main.block("entry").instrs[1]
    pure_call = main.block("entry").instrs[2]
    assert summaries.call_reads(reader_call)
    assert not summaries.call_writes(reader_call)
    assert summaries.call_writes(wrapper_call)
    assert not summaries.call_reads(pure_call)
    assert not summaries.call_writes(pure_call)
