"""Natural loop and induction variable tests."""

from repro.analysis.cfg import CFG
from repro.analysis.loops import (
    LoopNest,
    ensure_preheader,
    find_basic_induction_variables,
)
from repro.ir import parse_function
from repro.ssa import build_ssa

NESTED = """\
func nested(n, m) {
entry:
  i = copy 0
  jump outer_head
outer_head:
  c0 = lt i, n
  br c0, outer_body, done
outer_body:
  j = copy 0
  jump inner_head
inner_head:
  c1 = lt j, m
  br c1, inner_body, outer_latch
inner_body:
  j = add j, 1
  jump inner_head
outer_latch:
  i = add i, 1
  jump outer_head
done:
  ret i
}
"""


def test_finds_both_loops():
    func = parse_function(NESTED)
    nest = LoopNest.build(func)
    headers = {loop.header for loop in nest.loops}
    assert headers == {"outer_head", "inner_head"}


def test_nesting_relationship():
    func = parse_function(NESTED)
    nest = LoopNest.build(func)
    outer = next(l for l in nest.loops if l.header == "outer_head")
    inner = next(l for l in nest.loops if l.header == "inner_head")
    assert inner.parent is outer
    assert inner in outer.children
    assert outer.depth == 1
    assert inner.depth == 2
    assert inner.body < outer.body


def test_loop_ids_are_outer_first():
    func = parse_function(NESTED)
    nest = LoopNest.build(func)
    outer = next(l for l in nest.loops if l.header == "outer_head")
    inner = next(l for l in nest.loops if l.header == "inner_head")
    assert outer.loop_id < inner.loop_id


def test_exits_and_latches():
    func = parse_function(NESTED)
    nest = LoopNest.build(func)
    cfg = CFG.build(func)
    inner = next(l for l in nest.loops if l.header == "inner_head")
    assert inner.latches(cfg) == ["inner_body"]
    assert inner.exit_edges(cfg) == [("inner_head", "outer_latch")]
    outer = next(l for l in nest.loops if l.header == "outer_head")
    assert ("outer_head", "done") in outer.exit_edges(cfg)


def test_loop_of_block_returns_innermost():
    func = parse_function(NESTED)
    nest = LoopNest.build(func)
    assert nest.loop_of_block("inner_body").header == "inner_head"
    assert nest.loop_of_block("outer_latch").header == "outer_head"
    assert nest.loop_of_block("entry") is None


def test_ensure_preheader_reuses_existing_unique_pred():
    func = parse_function(NESTED)
    nest = LoopNest.build(func)
    outer = next(l for l in nest.loops if l.header == "outer_head")
    label = ensure_preheader(func, outer)
    assert label == "entry"


def test_induction_variable_detection():
    func = parse_function(NESTED)
    build_ssa(func)
    nest = LoopNest.build(func)
    outer = next(l for l in nest.loops if l.header == "outer_head")
    ivs = find_basic_induction_variables(func, outer)
    assert len(ivs) == 1
    assert ivs[0].var.base == "i"
    assert ivs[0].step == 1


def test_body_size_counts_costly_instructions():
    func = parse_function(NESTED)
    nest = LoopNest.build(func)
    inner = next(l for l in nest.loops if l.header == "inner_head")
    # inner loop: lt + add + br cost 1 each; jumps/phis cost 0.
    assert inner.body_size(func) == 3
