"""Coverage for smaller analysis/interp surfaces: preheader insertion,
edge splitting, loop summaries, interpreter symbol scoping."""

import pytest

from repro.analysis.cfg import CFG, split_edge
from repro.analysis.loops import LoopNest, ensure_preheader
from repro.analysis.loopsummary import LoopSummary
from repro.ir import parse_module
from repro.profiling import Machine, run_module


def test_ensure_preheader_splits_multi_entry():
    module = parse_module(
        """\
module t
func f(a, n) {
entry:
  c0 = lt a, 0
  br c0, way1, way2
way1:
  i = copy 0
  jump head
way2:
  i = copy 5
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  i = add i, 1
  jump head
exit:
  ret i
}
"""
    )
    func = module.function("f")
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    label = ensure_preheader(func, loop)
    cfg = CFG.build(func)
    # The preheader is now the unique out-of-loop predecessor.
    out_preds = [p for p in cfg.preds[loop.header] if p not in loop.body]
    assert out_preds == [label]
    # Semantics preserved.
    assert run_module(module, func_name="f", args=[-1, 3])[0] == 3
    assert run_module(module, func_name="f", args=[1, 9])[0] == 9


def test_split_edge_updates_phis():
    module = parse_module(
        """\
module t
func f(c) {
entry:
  br c, a, b
a:
  jump join
b:
  jump join
join:
  r = phi [a: 1, b: 2]
  ret r
}
"""
    )
    func = module.function("f")
    new_block = split_edge(func, "a", "join")
    phi = next(func.block("join").phis())
    assert new_block.label in phi.incomings
    assert "a" not in phi.incomings
    assert run_module(module, func_name="f", args=[1])[0] == 1
    assert run_module(module, func_name="f", args=[0])[0] == 2


def test_split_edge_rejects_missing_edge():
    module = parse_module(
        """\
module t
func f() {
entry:
  jump out
out:
  ret 0
}
"""
    )
    with pytest.raises(ValueError):
        split_edge(module.function("f"), "out", "entry")


NESTED = """\
module t
global acc[4]
func f(n, m) {
entry:
  p = addr acc
  i = copy 0
  jump outer
outer:
  c0 = lt i, n
  br c0, obody, done
obody:
  j = copy 0
  t = copy 0
  jump inner
inner:
  c1 = lt j, m
  br c1, ibody, after
ibody:
  t = add t, j
  store p, 0, t !acc
  j = add j, 1
  jump inner
after:
  i = add i, 1
  jump outer
done:
  ret i
}
"""


def test_loop_summary_interface():
    module = parse_module(NESTED)
    func = module.function("f")
    from repro.ssa import build_ssa

    build_ssa(func)
    nest = LoopNest.build(func)
    inner = next(l for l in nest.loops if l.header == "inner")
    summary = LoopSummary(inner, func, trip_count=8.0)

    assert summary.dest is None
    assert summary.writes_memory
    assert not summary.reads_memory  # the inner loop only stores
    assert "acc" in summary.syms
    assert summary.cost > 8  # body size x trip
    # Live-ins include the bound m and the base pointer.
    use_bases = {v.base for v in summary.uses()}
    assert "m" in use_bases
    assert summary.has_side_effects
    mem_instrs = summary.contained_mem_instrs(func)
    assert any(i.opcode == "store" for i in mem_instrs)


def test_summary_cost_scales_with_trip():
    module = parse_module(NESTED)
    func = module.function("f")
    from repro.ssa import build_ssa

    build_ssa(func)
    nest = LoopNest.build(func)
    inner = next(l for l in nest.loops if l.header == "inner")
    small = LoopSummary(inner, func, trip_count=2.0)
    large = LoopSummary(inner, func, trip_count=20.0)
    assert large.cost == pytest.approx(10 * small.cost)


def test_interpreter_symbol_scoping():
    """A function-local array shadows a same-named global."""
    module = parse_module(
        """\
module t
global buf[8]
func inner() {
  local buf[8]
entry:
  p = addr buf
  store p, 0, 42 !buf
  v = load p, 0 !buf
  ret v
}
func main() {
entry:
  g = addr buf
  store g, 0, 7 !buf
  x = call inner()
  y = load g, 0 !buf
  r = mul x, 100
  r2 = add r, y
  ret r2
}
"""
    )
    result, machine = run_module(module)
    assert result == 42 * 100 + 7
    # Distinct regions for the global and the local static.
    assert machine.symbols["buf"] != machine.symbols["inner.buf"]


def test_region_of_diagnostics():
    module = parse_module(
        """\
module t
global zone[16]
func main() {
entry:
  p = addr zone
  ret p
}
"""
    )
    result, machine = run_module(module)
    assert machine.region_of(result) == "zone"
    assert machine.region_of(result + 15) == "zone"
    assert machine.region_of(result + 16) is None


def test_edge_profile_trip_count_zero_when_never_entered():
    from repro.analysis.loops import LoopNest
    from repro.profiling import EdgeProfile

    module = parse_module(
        """\
module t
func main(n) {
entry:
  c = lt n, 0
  br c, loop_head, out
loop_head:
  n = sub n, 1
  c2 = gt n, 0
  br c2, loop_head, out
out:
  ret n
}
"""
    )
    profile = EdgeProfile()
    run_module(module, args=[5], tracers=[profile])
    func = module.function("main")
    nest = LoopNest.build(func)
    assert profile.trip_count(func, nest.loops[0]) == 0.0
