"""Property test: over generated MiniC programs, a warm cache hit is
bitwise identical to the cold compute that populated it.

Programs come from the fuzzing subsystem's generator
(:mod:`repro.testkit.generator`), so the property is exercised over
arbitrary loop shapes -- nests, while loops, irregular control flow,
aliased arrays -- not just the hand-written corpus.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch import ResultCache, compile_program_task
from repro.testkit import GenConfig, generate_program

#: Small programs keep each example fast; shape variety stays on.
GEN_CONFIG = GenConfig(
    max_depth=2,
    max_stmts=3,
    max_outer_trip=12,
    max_inner_trip=4,
    array_size=32,
)


def make_task(source):
    return {
        "index": 0,
        "path": "generated.c",
        "name": "generated",
        "source": source,
        "config": "best",
        "config_overrides": {},
        "entry": "main",
        "args": [],
        "fuel": 50_000_000,
    }


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_cache_hit_bitwise_identical(tmp_path_factory, seed):
    spec = generate_program(seed, GEN_CONFIG)
    source = spec.source()
    cache = ResultCache(
        str(tmp_path_factory.mktemp("propcache") / f"s{seed}")
    )

    cold, cold_stats = compile_program_task(make_task(source), cache)
    warm, warm_stats = compile_program_task(make_task(source), cache)

    if cold["status"] != "ok":
        # Generator produced a program the pipeline rejects: both runs
        # must at least fail identically (errors are never cached).
        assert warm["status"] == cold["status"]
        assert warm.get("error") == cold.get("error")
        return

    assert warm["cached"] is True, warm
    assert warm_stats["misses"] == 0
    assert warm_stats["hits"] == cold_stats["misses"] >= 2  # program + loops

    cold.pop("cached"), warm.pop("cached")
    assert json.dumps(cold, sort_keys=True) == json.dumps(
        warm, sort_keys=True
    )
