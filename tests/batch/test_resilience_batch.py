"""Batch-layer resilience: per-program timeouts and the stall backstop.

``--program-timeout`` arms a SIGALRM in each worker; an overrunning
program gets exactly one retry on the degraded ladder configuration
before it is reported as ``status: "timeout"``.  ``--stall-timeout``
(or ``SptConfig.batch_stall_timeout_s``) bounds how long the driver
waits for silent progress before declaring unclaimed tasks lost.
"""

import os
import signal

import pytest

from repro.batch import run_batch
from repro.resilience.faults import FAULT_ENV_VAR, reset_fault_state

PROGRAM = """
global int data[64];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 63];
        int y = (x * 11 + i) ^ (x >> 1);
        data[i & 63] = y & 127;
        s += y & 7;
    }
    return s;
}
"""

needs_sigalrm = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="platform has no SIGALRM"
)


@pytest.fixture
def prog(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return path


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


@needs_sigalrm
def test_program_timeout_recovers_on_degraded_ladder(
    prog, tmp_path, monkeypatch
):
    # The SVP round sleeps past the program budget; the degraded retry
    # disables SVP, so the second attempt completes well inside it.
    monkeypatch.setenv(FAULT_ENV_VAR, "svp:slow:3")
    result = run_batch(
        [str(prog)], args=(32,), jobs=1,
        cache_dir=str(tmp_path / "cache"), program_timeout=1.0,
    )
    assert result.ok
    entry = result.manifest["programs"][0]
    assert entry["status"] == "ok"
    assert entry["degraded"] is True
    assert "exceeded" in entry["degraded_reason"]
    assert result.stats["degraded_programs"] == 1
    assert result.stats["timeouts"] == 0

    # The degraded result ran under a different config fingerprint, so
    # it cannot have poisoned the full configuration's cache entries.
    monkeypatch.delenv(FAULT_ENV_VAR)
    clean = run_batch(
        [str(prog)], args=(32,), jobs=1,
        cache_dir=str(tmp_path / "cache"),
    )
    clean_entry = clean.manifest["programs"][0]
    assert clean_entry["status"] == "ok"
    assert not clean_entry.get("degraded")
    assert not clean.entries[0].get("cached")


@needs_sigalrm
def test_double_timeout_reports_timeout_status(prog, tmp_path, monkeypatch):
    # Profiling runs on both attempts, so both overrun: one degraded
    # retry, then a structured timeout entry -- never an abort.
    monkeypatch.setenv(FAULT_ENV_VAR, "profile:slow:5")
    result = run_batch(
        [str(prog)], args=(32,), jobs=1,
        cache_dir=str(tmp_path / "cache"), program_timeout=0.75,
    )
    assert not result.ok
    entry = result.manifest["programs"][0]
    assert entry["status"] == "timeout"
    assert entry["error"]["type"] == "ProgramTimeout"
    assert "degraded retry" in entry["error"]["message"]
    assert result.stats["timeouts"] == 1
    assert result.stats["ok"] == 0


def _task_swallowing_worker(task_queue, result_queue, worker_id, cache_dir,
                            claim, *extra):
    # Pathological worker: dequeues a task, reports nothing, exits
    # cleanly.  The driver sees a clean exit (no crash to attribute)
    # and the task can only be recovered by the stall backstop.
    task_queue.get()
    os._exit(0)


def test_stall_timeout_flags_lost_tasks(prog, tmp_path, monkeypatch):
    monkeypatch.setattr(
        "repro.batch.driver.worker_main", _task_swallowing_worker
    )
    result = run_batch(
        [str(prog)], args=(32,), jobs=1,
        cache_dir=str(tmp_path / "cache"), stall_timeout=0.75,
    )
    entry = result.manifest["programs"][0]
    assert entry["status"] == "crashed"
    assert "task lost" in entry["error"]["message"]
    assert "within 0.75s" in entry["error"]["message"]
    assert result.stats["crashed"] == 1


def test_stall_timeout_comes_from_config(prog, tmp_path, monkeypatch):
    # Satellite: with no explicit override the driver reads the
    # configurable SptConfig.batch_stall_timeout_s, not a constant.
    monkeypatch.setattr(
        "repro.batch.driver.worker_main", _task_swallowing_worker
    )
    result = run_batch(
        [str(prog)], args=(32,), jobs=1,
        cache_dir=str(tmp_path / "cache"),
        config_overrides={"batch_stall_timeout_s": 0.6},
    )
    entry = result.manifest["programs"][0]
    assert entry["status"] == "crashed"
    assert "within 0.6s" in entry["error"]["message"]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"stall_timeout": 0},
        {"stall_timeout": -1.0},
        {"program_timeout": 0},
        {"program_timeout": -5.0},
    ],
)
def test_non_positive_timeouts_are_rejected(prog, kwargs):
    with pytest.raises(ValueError):
        run_batch([str(prog)], args=(32,), **kwargs)
