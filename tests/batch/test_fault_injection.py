"""Fault-injection tests for worker crash isolation.

``$REPRO_BATCH_CRASH_ON`` makes a worker hard-exit (``os._exit``, no
cleanup, no exception) while holding a matching program.  The batch
must report a structured per-program failure and finish everything
else -- one poisoned program can never take down the run.
"""

import pytest

from repro.batch import CRASH_ENV_VAR, CRASH_EXIT_CODE, run_batch

PROGRAM = """
global int data[64];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 63];
        int y = (x * 11 + i) ^ (x >> 1);
        data[i & 63] = y & 127;
        s += y & 7;
    }
    return s;
}
"""


@pytest.fixture
def corpus(tmp_path):
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    for index in range(5):
        (corpus_dir / f"prog{index}.c").write_text(
            PROGRAM.replace("y & 7", f"y & {7 + index}")
        )
    # Distinct content: the content-addressed cache must never be able
    # to serve the poisoned program from a healthy twin's entry.
    (corpus_dir / "poison.c").write_text(PROGRAM.replace("y & 7", "y & 63"))
    return corpus_dir


@pytest.mark.parametrize("jobs", [1, 3])
def test_worker_crash_is_isolated(corpus, tmp_path, monkeypatch, jobs):
    monkeypatch.setenv(CRASH_ENV_VAR, "poison")
    result = run_batch(
        [str(corpus)], args=(32,), jobs=jobs,
        cache_dir=str(tmp_path / "cache"),
    )
    assert not result.ok
    by_path = {p["path"]: p for p in result.manifest["programs"]}

    crashed = by_path["poison.c"]
    assert crashed["status"] == "crashed"
    assert crashed["error"]["exitcode"] == CRASH_EXIT_CODE
    assert "worker process died" in crashed["error"]["message"]

    for index in range(5):
        assert by_path[f"prog{index}.c"]["status"] == "ok"
    assert result.stats["crashed"] == 1
    assert result.stats["ok"] == 5


def test_crash_entries_are_not_cached(corpus, tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "cache")
    monkeypatch.setenv(CRASH_ENV_VAR, "poison")
    run_batch([str(corpus)], args=(32,), jobs=2, cache_dir=cache_dir)

    # With the fault gone, the poisoned program compiles fine -- the
    # crash must not have left a poisoned cache entry behind.
    monkeypatch.delenv(CRASH_ENV_VAR)
    result = run_batch([str(corpus)], args=(32,), jobs=2, cache_dir=cache_dir)
    assert result.ok
    by_path = {p["path"]: p for p in result.manifest["programs"]}
    assert by_path["poison.c"]["status"] == "ok"
    # The five healthy programs come back warm from the first run.
    assert result.stats["cached_programs"] == 5


def test_every_worker_crashing_still_terminates(corpus, tmp_path, monkeypatch):
    """Crash on *every* program: the batch must respawn through the
    whole corpus and report six structured failures, not hang."""
    monkeypatch.setenv(CRASH_ENV_VAR, ".c")
    result = run_batch(
        [str(corpus)], args=(32,), jobs=2, cache_dir=str(tmp_path / "cache")
    )
    statuses = [p["status"] for p in result.manifest["programs"]]
    assert statuses == ["crashed"] * 6
    assert result.stats["crashed"] == 6
