"""Live batch progress: the tracker's bookkeeping, the progress.json
schema validator, and the heartbeat acceptance loop through run_batch."""

import json

import pytest

from repro.batch import run_batch
from repro.batch.progress import (
    PROGRESS_SCHEMA,
    ProgressTracker,
    validate_progress,
)
from repro.obs import Telemetry

OK_PROGRAM = """
global int data[128];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 127];
        int y = (x * 9 + i) ^ (x >> 1);
        data[i & 127] = y & 255;
        s += y & 7;
    }
    return s;
}
"""


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def corpus(tmp_path):
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    for index in range(3):
        (corpus_dir / f"prog{index}.c").write_text(
            OK_PROGRAM.replace("y & 7", f"y & {7 + index}")
        )
    return corpus_dir


# -- tracker unit behaviour --------------------------------------------------


def test_tracker_counts_and_in_flight_lifecycle():
    clock = FakeClock()
    tracker = ProgressTracker(total=3, jobs=2, clock=clock)
    tracker.on_start(0, 0, "a.c")
    tracker.on_start(1, 1, "b.c")
    assert len(tracker.in_flight) == 2
    assert tracker.heartbeats == 2  # start counts as the first heartbeat
    clock.advance(1.0)
    tracker.on_heartbeat(0, 0)
    assert tracker.worker_beats[0] == 2
    tracker.on_done(0, {"status": "ok", "cached": True})
    tracker.on_done(1, {"status": "error"})
    assert (tracker.done, tracker.ok, tracker.failed, tracker.cached) == (
        2, 1, 1, 1,
    )
    assert tracker.in_flight == {}


def test_tracker_liveness_clock():
    clock = FakeClock()
    tracker = ProgressTracker(total=1, jobs=1, clock=clock)
    clock.advance(5.0)
    assert tracker.seconds_since_heartbeat() == pytest.approx(5.0)
    tracker.on_heartbeat(0, 0)
    assert tracker.seconds_since_heartbeat() == 0.0
    clock.advance(2.0)
    tracker.note_activity()
    assert tracker.seconds_since_heartbeat() == 0.0


def test_stale_heartbeat_for_finished_task_does_not_resurrect_slot():
    tracker = ProgressTracker(total=2, jobs=1, clock=FakeClock())
    tracker.on_start(0, 0, "a.c")
    tracker.on_done(0, {"status": "ok"})
    tracker.on_heartbeat(0, 0)  # late beat from the finished task
    assert tracker.in_flight == {}


def test_eta_and_status_line():
    clock = FakeClock()
    tracker = ProgressTracker(total=4, jobs=2, clock=clock)
    assert tracker.eta_s() is None
    clock.advance(10.0)
    tracker.on_done(0, {"status": "ok"})
    assert tracker.eta_s() == pytest.approx(30.0)
    line = tracker.status_line()
    assert line.startswith("batch 1/4 | ok 1")
    assert "eta 30s" in line


def test_snapshot_validates_and_write_is_atomic(tmp_path):
    clock = FakeClock()
    tracker = ProgressTracker(total=2, jobs=2, clock=clock)
    tracker.on_start(0, 0, "a.c")
    clock.advance(0.5)
    snapshot = tracker.snapshot()
    assert validate_progress(snapshot) == []
    assert snapshot["schema"] == PROGRESS_SCHEMA
    assert snapshot["in_flight"][0]["running_s"] == pytest.approx(0.5)

    path = tmp_path / "progress.json"
    tracker.write(str(path))
    assert validate_progress(json.loads(path.read_text())) == []
    assert not list(tmp_path.glob("progress.json.tmp.*"))


def test_validate_progress_flags_broken_documents():
    assert validate_progress([]) == ["progress document is not an object"]
    good = ProgressTracker(total=1, jobs=1, clock=FakeClock()).snapshot()
    for mutation, needle in [
        ({"schema": "other/9"}, "schema"),
        ({"done": -1}, "done"),
        ({"eta_s": "soon"}, "eta_s"),
        ({"in_flight": "nope"}, "in_flight"),
        ({"done": 5}, "done exceeds total"),
        ({"ok": 1}, "ok + failed != done"),
    ]:
        doc = dict(good)
        doc.update(mutation)
        problems = validate_progress(doc)
        assert any(needle in p for p in problems), (mutation, problems)


# -- acceptance: live progress through run_batch -----------------------------


def test_run_batch_emits_heartbeats_and_valid_progress_json(
    corpus, tmp_path
):
    """Every worker that runs a program must heartbeat at least once,
    the final progress.json must validate against the schema, and the
    one-line status must have been rendered."""
    progress_path = tmp_path / "progress.json"
    lines = []
    telemetry = Telemetry()
    result = run_batch(
        [str(corpus)],
        args=(48,),
        jobs=2,
        cache_dir=str(tmp_path / "cache"),
        telemetry=telemetry,
        progress_path=str(progress_path),
        heartbeat_s=0.05,
        status=lines.append,
    )
    assert all(p["status"] == "ok" for p in result.manifest["programs"])
    assert result.stats["heartbeats"] >= 3  # >= one per started program

    document = json.loads(progress_path.read_text())
    assert validate_progress(document) == []
    assert document["done"] == document["total"] == 3
    assert document["ok"] == 3
    assert document["in_flight"] == []
    assert document["heartbeats"] == result.stats["heartbeats"]

    assert lines, "status callback never invoked"
    assert lines[-1].startswith("batch 3/3 | ok 3")

    # Worker-side observability flowed back into the driver telemetry.
    assert any(
        name.startswith(("selection.", "partition.", "transform."))
        for name in telemetry.counters
    )


def test_run_batch_rejects_bad_heartbeat_interval(corpus, tmp_path):
    with pytest.raises(ValueError):
        run_batch(
            [str(corpus)],
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            heartbeat_s=0.0,
        )
