"""Crash-resumable batch runs: the journal, and a real SIGKILL.

The acceptance property: a batch SIGKILLed mid-run and re-run with
``--resume`` produces a manifest **byte-identical** to an uninterrupted
run's, with the already-finished programs replayed from the journal
instead of recompiled.
"""

import glob
import hashlib
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.batch import manifest_to_bytes, run_batch
from repro.batch.journal import (
    JOURNAL_SCHEMA,
    BatchJournal,
    batch_key,
)

CORPUS = os.path.join(
    os.path.dirname(__file__), os.pardir, "golden", "corpus"
)


def _tasks(sources):
    return [
        {"path": f"p{i}.c", "source": source}
        for i, source in enumerate(sources)
    ]


def test_batch_key_tracks_identity_not_order_of_definition():
    tasks = _tasks(["int main(int n) { return n; }"])
    key = batch_key("cfg", "main", [96], 1000, tasks)
    assert key == batch_key("cfg", "main", [96], 1000, tasks)
    assert key != batch_key("cfg2", "main", [96], 1000, tasks)
    assert key != batch_key("cfg", "main", [97], 1000, tasks)
    assert key != batch_key(
        "cfg", "main", [96], 1000,
        _tasks(["int main(int n) { return n + 1; }"]),
    )


def test_journal_roundtrip_and_validation(tmp_path):
    tasks = _tasks(["int main(int n) { return n; }", "int f() { return 1; }"])
    journal = BatchJournal(str(tmp_path), "k" * 64)
    journal.record(0, tasks[0], {"status": "ok", "path": "p0.c"})
    journal.record(1, tasks[1], {"status": "crashed", "path": "p1.c"})
    resumed = journal.load(tasks)
    # ok resumes; crashed is run-shape dependent and must be retried.
    assert list(resumed) == [0]
    assert journal.skipped == 1


def test_journal_rejects_stale_and_torn_lines(tmp_path):
    tasks = _tasks(["int main(int n) { return n; }"])
    journal = BatchJournal(str(tmp_path), "k" * 64)
    journal.record(0, tasks[0], {"status": "ok"})
    with open(journal.path, "a") as handle:
        # Torn trailing append, a foreign schema, and a stale digest.
        handle.write('{"schema": "' + JOURNAL_SCHEMA + '", "ind\n')
        handle.write(
            json.dumps({"schema": "other/1", "index": 0, "entry": {}}) + "\n"
        )
        handle.write(
            json.dumps(
                {
                    "schema": JOURNAL_SCHEMA,
                    "index": 0,
                    "path": "p0.c",
                    "sha256": "0" * 64,
                    "entry": {"status": "ok", "poisoned": True},
                }
            )
            + "\n"
        )
    resumed = journal.load(tasks)
    assert resumed == {0: {"status": "ok"}}  # later invalid lines lost
    assert journal.skipped == 3


def test_journal_last_valid_line_wins(tmp_path):
    tasks = _tasks(["int main(int n) { return n; }"])
    journal = BatchJournal(str(tmp_path), "k" * 64)
    journal.record(0, tasks[0], {"status": "ok", "round": 1})
    journal.record(0, tasks[0], {"status": "ok", "round": 2})
    assert journal.load(tasks)[0]["round"] == 2


def test_resume_replays_finished_programs(tmp_path):
    """An in-process run with a pre-seeded journal recompiles nothing
    that already finished, and the manifest is byte-identical."""
    reference = run_batch(
        [CORPUS], args=(96,), jobs=2, use_cache=False,
    )
    assert reference.ok

    # First resumable run writes the journal as it goes.
    journal_dir = str(tmp_path / "journal")
    first = run_batch(
        [CORPUS], args=(96,), jobs=2, use_cache=False,
        resume=True, journal_dir=journal_dir,
    )
    assert first.ok
    assert first.stats["resumed_programs"] == 0
    assert manifest_to_bytes(first.manifest) == manifest_to_bytes(
        reference.manifest
    )

    # Second resumable run replays every program from the journal.
    second = run_batch(
        [CORPUS], args=(96,), jobs=2, use_cache=False,
        resume=True, journal_dir=journal_dir,
    )
    assert second.ok
    assert second.stats["resumed_programs"] == len(reference.entries)
    assert manifest_to_bytes(second.manifest) == manifest_to_bytes(
        reference.manifest
    )


@pytest.mark.slow
def test_sigkill_mid_run_then_resume_is_byte_identical(tmp_path):
    """kill -9 a ``repro batch --jobs 4 --resume`` mid-run; the resumed
    run must produce a byte-identical manifest."""
    journal_dir = str(tmp_path / "journal")
    reference_path = str(tmp_path / "reference.json")
    resumed_path = str(tmp_path / "resumed.json")
    base = [
        sys.executable, "-m", "repro", "batch", CORPUS,
        "--jobs", "4", "--args", "96", "--no-cache",
    ]
    subprocess.run(
        base + ["--manifest", reference_path], check=True,
        capture_output=True, timeout=600,
    )

    resume_cmd = base + [
        "--resume", "--journal-dir", journal_dir,
        "--manifest", resumed_path,
    ]
    killed = False
    for _attempt in range(5):
        process = subprocess.Popen(
            resume_cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and process.poll() is None:
            journals = glob.glob(
                os.path.join(journal_dir, "v1", "*.journal")
            )
            if any(os.path.getsize(p) > 0 for p in journals):
                process.send_signal(signal.SIGKILL)
                process.wait()
                killed = True
                break
            time.sleep(0.005)
        else:
            process.kill()
            process.wait()
        if killed:
            break
        # Too fast to catch: wipe and retry with a fresh journal.
        for path in glob.glob(os.path.join(journal_dir, "v1", "*.journal")):
            os.remove(path)

    proc = subprocess.run(
        resume_cmd, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    if killed:
        assert "resumed from journal" in proc.stdout

    with open(reference_path, "rb") as handle:
        reference = handle.read()
    with open(resumed_path, "rb") as handle:
        resumed = handle.read()
    assert hashlib.sha256(resumed).hexdigest() == hashlib.sha256(
        reference
    ).hexdigest()
    assert resumed == reference
