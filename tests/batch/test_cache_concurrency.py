"""Satellite: concurrent writers to the same cache entry never tear.

Two processes racing ``put_program`` on the same ``v<N>/<aa>/<key>``
path must both succeed, and the surviving entry must be one writer's
complete payload -- the atomic tempfile+rename write path guarantees a
reader can never observe an interleaved or truncated document.
"""

import multiprocessing
import os
import time

from repro.batch.cache import ResultCache


def _payload(tag: str) -> dict:
    # Large enough that a non-atomic write would interleave across
    # multiple write() syscalls.
    return {
        "summary": {"writer": tag, "blob": [tag * 64] * 512},
        "loop_keys": [f"{tag}-{i}" for i in range(32)],
    }


def _writer(cache_dir, key, tag, barrier, rounds):
    cache = ResultCache(cache_dir)
    payload = _payload(tag)
    barrier.wait()
    for _ in range(rounds):
        cache.put_program(key, payload)
    os._exit(0)


def test_concurrent_writers_same_key_do_not_tear(tmp_path):
    cache_dir = str(tmp_path / "cache")
    key = ResultCache.program_key("module m {}", "fingerprint", "workload")
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(2)
    procs = [
        ctx.Process(
            target=_writer, args=(cache_dir, key, tag, barrier, 40)
        )
        for tag in ("a", "b")
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    cache = ResultCache(cache_dir)
    entry = cache.get_program(key)
    # A valid, complete document from exactly one of the writers --
    # never a mixture, never corrupt (get_program returns None and
    # counts `corrupt` on undecodable entries).
    assert entry in (_payload("a"), _payload("b"))
    assert cache.stats.corrupt == 0

    # The atomic write path cleans up after itself: no orphaned
    # tempfiles anywhere in the cache tree.
    stray = [
        name
        for _root, _dirs, files in os.walk(cache_dir)
        for name in files
        if name.startswith(".tmp-")
    ]
    assert stray == []


def test_concurrent_reader_never_sees_partial_entry(tmp_path):
    # A reader polling while a writer rewrites the same key must only
    # ever observe a complete payload (or a miss before first publish).
    cache_dir = str(tmp_path / "cache")
    key = ResultCache.program_key("module m {}", "fp", "wl")
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(2)
    writer = ctx.Process(
        target=_writer, args=(cache_dir, key, "w", barrier, 200)
    )
    writer.start()
    cache = ResultCache(cache_dir)
    expected = _payload("w")
    barrier.wait()
    seen = 0
    deadline = time.monotonic() + 30.0
    while (seen < 200 and time.monotonic() < deadline
           and (seen or writer.is_alive())):
        entry = cache.get_program(key)
        if entry is not None:
            assert entry == expected
            seen += 1
    writer.join(timeout=60)
    assert writer.exitcode == 0
    assert cache.stats.corrupt == 0
    assert seen > 0
    assert cache.get_program(key) == expected
