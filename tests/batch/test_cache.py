"""Cache-correctness tests for the persistent batch result cache.

The contract under test: a cache hit is *bitwise identical* to a cold
compute; keys invalidate on any SptConfig change and on a cache-format
version bump; and corrupted or truncated entries degrade to recompute,
never to a crash or a wrong answer.
"""

import json
import os

import pytest

import repro.batch.cache as cache_mod
from repro.batch import (
    ResultCache,
    canonical_module_text,
    compile_program_task,
)
from repro.core.config import best_config

PROGRAM = """
global int data[256];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 255];
        int y = (x * 5 + i) ^ (x >> 2);
        data[i & 255] = y & 511;
        s += y & 15;
    }
    return s;
}
"""


def make_task(source=PROGRAM, path="prog.c", **overrides):
    task = {
        "index": 0,
        "path": path,
        "name": "prog",
        "source": source,
        "config": "best",
        "config_overrides": {},
        "entry": "main",
        "args": [64],
        "fuel": 50_000_000,
    }
    task.update(overrides)
    return task


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


def entry_bytes(entry):
    return json.dumps(entry, sort_keys=True).encode()


def test_hit_is_bitwise_identical_to_cold_compute(cache):
    cold, _ = compile_program_task(make_task(), cache)
    assert cold["status"] == "ok" and cold["cached"] is False

    warm, stats = compile_program_task(make_task(), cache)
    assert warm["cached"] is True
    assert stats["hits"] > 0 and stats["misses"] == 0

    # Everything except the warm/cold marker must be byte-identical.
    cold.pop("cached"), warm.pop("cached")
    assert entry_bytes(cold) == entry_bytes(warm)


def test_hit_matches_uncached_compute(cache):
    """The cached answer equals what a no-cache compile produces."""
    compile_program_task(make_task(), cache)
    warm, _ = compile_program_task(make_task(), cache)
    fresh, _ = compile_program_task(make_task(), None)
    assert warm["summary"] == fresh["summary"]
    assert warm["sha256"] == fresh["sha256"]


def test_canonicalization_ignores_comments_and_whitespace(cache):
    compile_program_task(make_task(), cache)
    reformatted = "// a comment\n" + PROGRAM.replace("    ", "\t")
    warm, stats = compile_program_task(make_task(source=reformatted), cache)
    assert warm["cached"] is True
    assert stats["misses"] == 0
    # ... and the canonical text itself is equal.
    assert canonical_module_text(PROGRAM) == canonical_module_text(reformatted)


def test_semantic_change_misses(cache):
    compile_program_task(make_task(), cache)
    changed = PROGRAM.replace("y & 15", "y & 31")
    entry, stats = compile_program_task(make_task(source=changed), cache)
    assert entry["cached"] is False
    assert stats["misses"] > 0


def test_config_change_invalidates(cache):
    compile_program_task(make_task(), cache)
    entry, _ = compile_program_task(
        make_task(config_overrides={"cost_fraction": 0.2}), cache
    )
    assert entry["cached"] is False
    # And the original config still hits.
    entry, _ = compile_program_task(make_task(), cache)
    assert entry["cached"] is True


def test_workload_change_invalidates(cache):
    compile_program_task(make_task(), cache)
    entry, _ = compile_program_task(make_task(args=[65]), cache)
    assert entry["cached"] is False


def test_version_bump_invalidates(cache, monkeypatch):
    compile_program_task(make_task(), cache)
    monkeypatch.setattr(cache_mod, "CACHE_FORMAT_VERSION", 999)
    entry, _ = compile_program_task(make_task(), cache)
    assert entry["cached"] is False
    # New-format entries land in their own namespace...
    assert os.path.isdir(os.path.join(cache.cache_dir, "v999"))
    # ...and after reverting, the old format still hits untouched.
    monkeypatch.undo()
    entry, _ = compile_program_task(make_task(), cache)
    assert entry["cached"] is True


def test_fingerprint_stability():
    assert best_config().fingerprint() == best_config().fingerprint()
    assert (
        best_config().fingerprint()
        != best_config().with_overrides(min_body_size=13).fingerprint()
    )


@pytest.mark.parametrize(
    "corruptor",
    [
        lambda raw: b"",  # truncated to nothing
        lambda raw: raw[: len(raw) // 2],  # torn write
        lambda raw: b"not json at all{{{",
        lambda raw: json.dumps({"format": 1, "kind": "program"}).encode(),
        lambda raw: json.dumps(["wrong", "shape"]).encode(),
    ],
    ids=["empty", "truncated", "garbage", "missing-fields", "wrong-shape"],
)
def test_corrupt_entries_recover(cache, corruptor):
    compile_program_task(make_task(), cache)
    paths = cache.entry_paths()
    assert paths
    for path in paths:
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(corruptor(raw))

    entry, stats = compile_program_task(make_task(), cache)
    assert entry["status"] == "ok"
    assert entry["cached"] is False  # recomputed, did not crash
    assert stats["corrupt"] > 0

    # The rewrite healed the cache: next lookup is warm again.
    entry, _ = compile_program_task(make_task(), cache)
    assert entry["cached"] is True


def test_corrupt_loop_record_forces_full_recompute(cache):
    cold, _ = compile_program_task(make_task(), cache)
    # Damage exactly one loop entry, keep the program entry intact.
    program_key = cold["program_key"]
    program_payload = cache.get_program(program_key)
    loop_key = program_payload["loop_keys"][0]
    with open(cache._path_for(loop_key), "w") as handle:
        handle.write('{"half a docu')
    entry, _ = compile_program_task(make_task(), cache)
    assert entry["status"] == "ok" and entry["cached"] is False
    entry, _ = compile_program_task(make_task(), cache)
    assert entry["cached"] is True


def test_prune_evicts_oldest(cache):
    for shift in range(5):
        compile_program_task(
            make_task(source=PROGRAM.replace("& 15", f"& {shift + 16}")),
            cache,
        )
    total = len(cache.entry_paths())
    assert total >= 10
    # Age entries deterministically so mtime ordering is unambiguous.
    for age, path in enumerate(cache.entry_paths()):
        os.utime(path, (age, age))
    evicted = cache.prune(4)
    assert evicted == total - 4
    assert len(cache.entry_paths()) == 4
    assert cache.stats.evictions == evicted
    # Pruning below the bound is a no-op.
    assert cache.prune(10) == 0


def test_get_never_raises_on_unreadable_dir(tmp_path):
    cache = ResultCache(str(tmp_path / "nonexistent"))
    assert cache.get_program("0" * 64) is None
    assert cache.stats.misses == 1
