"""Batch driver tests: input expansion, deterministic merge, error
entries, stats accounting, and warm-run behaviour."""

import json
import os

import pytest

from repro.batch import (
    MANIFEST_SCHEMA,
    expand_inputs,
    manifest_to_bytes,
    run_batch,
)
from repro.obs import Telemetry

OK_PROGRAM = """
global int data[128];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 127];
        int y = (x * 9 + i) ^ (x >> 1);
        data[i & 127] = y & 255;
        s += y & 7;
    }
    return s;
}
"""

BAD_PROGRAM = "int main(int n) { return undeclared_array[0]; }"


@pytest.fixture
def corpus(tmp_path):
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    for index in range(4):
        # Distinct constants make four genuinely different programs.
        (corpus_dir / f"prog{index}.c").write_text(
            OK_PROGRAM.replace("y & 7", f"y & {7 + index}")
        )
    return corpus_dir


def test_expand_inputs_dir_glob_and_dedup(corpus, tmp_path):
    from_dir = expand_inputs([str(corpus)])
    assert [os.path.basename(p) for p in from_dir] == [
        "prog0.c", "prog1.c", "prog2.c", "prog3.c",
    ]
    from_glob = expand_inputs([str(corpus / "*.c")])
    assert from_glob == from_dir
    assert expand_inputs([str(corpus), str(corpus / "*.c")]) == from_dir
    with pytest.raises(FileNotFoundError):
        expand_inputs([str(tmp_path / "no-such-*.c")])


def test_manifest_schema_and_order(corpus, tmp_path):
    result = run_batch(
        [str(corpus)], args=(48,), jobs=2, cache_dir=str(tmp_path / "cache")
    )
    manifest = result.manifest
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert len(manifest["config_fingerprint"]) == 64
    paths = [p["path"] for p in manifest["programs"]]
    assert paths == sorted(paths)
    for program in manifest["programs"]:
        assert program["status"] == "ok"
        assert set(program["summary"]) >= {"candidates", "selected"}
        # Volatile fields must not leak into the manifest.
        assert "cached" not in program
        assert "program_key" not in program


def test_error_program_isolated(corpus, tmp_path):
    (corpus / "bad.c").write_text(BAD_PROGRAM)
    result = run_batch(
        [str(corpus)], args=(48,), jobs=2, cache_dir=str(tmp_path / "cache")
    )
    assert not result.ok
    by_path = {p["path"]: p for p in result.manifest["programs"]}
    assert by_path["bad.c"]["status"] == "error"
    assert by_path["bad.c"]["error"]["type"]
    oks = [p for p in result.manifest["programs"] if p["status"] == "ok"]
    assert len(oks) == 4
    assert result.stats["errors"] == 1


def test_errors_are_not_cached(corpus, tmp_path):
    (corpus / "bad.c").write_text(BAD_PROGRAM)
    cache_dir = str(tmp_path / "cache")
    first = run_batch([str(corpus)], args=(48,), jobs=1, cache_dir=cache_dir)
    second = run_batch([str(corpus)], args=(48,), jobs=1, cache_dir=cache_dir)
    assert manifest_to_bytes(first.manifest) == manifest_to_bytes(
        second.manifest
    )
    # The four good programs come back warm; the bad one recomputes.
    assert second.stats["cached_programs"] == 4
    assert second.stats["cache"]["hit_rate"] >= 0.9


def test_warm_run_hit_rate_and_identical_manifest(corpus, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_batch([str(corpus)], args=(48,), jobs=2, cache_dir=cache_dir)
    warm = run_batch([str(corpus)], args=(48,), jobs=2, cache_dir=cache_dir)
    assert cold.stats["cache"]["hit_rate"] == 0.0
    assert warm.stats["cache"]["hit_rate"] >= 0.9
    assert warm.stats["cached_programs"] == 4
    assert manifest_to_bytes(cold.manifest) == manifest_to_bytes(warm.manifest)
    # Warm runs write nothing new.
    assert warm.stats["cache"]["writes"] == 0


def test_no_cache_mode(corpus, tmp_path):
    result = run_batch([str(corpus)], args=(48,), jobs=2, use_cache=False)
    assert result.ok
    assert result.stats["cache_dir"] is None
    assert result.stats["cache"]["hits"] == 0
    assert result.stats["cache"]["misses"] == 0
    assert result.stats["cache"]["writes"] == 0


def test_telemetry_counters_wired(corpus, tmp_path):
    telemetry = Telemetry()
    cache_dir = str(tmp_path / "cache")
    run_batch(
        [str(corpus)], args=(48,), jobs=2, cache_dir=cache_dir,
        telemetry=telemetry,
    )
    run_batch(
        [str(corpus)], args=(48,), jobs=2, cache_dir=cache_dir,
        telemetry=telemetry,
    )
    telemetry.close()
    assert telemetry.counters["batch.programs"] == 8
    assert telemetry.counters["batch.cache.hits"] > 0
    assert telemetry.counters["batch.cache.misses"] > 0
    assert "batch.cache.evictions" in telemetry.counters
    assert telemetry.spans_named("batch")


def test_cache_max_entries_evicts(corpus, tmp_path):
    cache_dir = str(tmp_path / "cache")
    result = run_batch(
        [str(corpus)], args=(48,), jobs=1, cache_dir=cache_dir,
        cache_max_entries=3,
    )
    assert result.stats["cache"]["evictions"] > 0
    from repro.batch import ResultCache

    assert len(ResultCache(cache_dir).entry_paths()) == 3


def test_stats_document_is_json_round_trippable(corpus, tmp_path):
    result = run_batch(
        [str(corpus)], args=(48,), jobs=2, cache_dir=str(tmp_path / "cache")
    )
    round_tripped = json.loads(json.dumps(result.stats))
    assert round_tripped["programs"] == 4
    assert round_tripped["jobs"] >= 1
    assert 0.0 <= round_tripped["cache"]["hit_rate"] <= 1.0
