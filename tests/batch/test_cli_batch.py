"""CLI tests for ``repro batch`` and ``repro explain --cache-dir``."""

import json
import os

import pytest

from repro.cli import main

PROGRAM = """
global int data[128];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 127];
        int y = (x * 13 + i) ^ (x >> 2);
        data[i & 127] = y & 255;
        s += y & 7;
    }
    return s;
}
"""


@pytest.fixture
def corpus(tmp_path):
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    for index in range(3):
        (corpus_dir / f"p{index}.c").write_text(
            PROGRAM.replace("y & 7", f"y & {7 + index}")
        )
    return corpus_dir


def test_batch_cli_end_to_end(corpus, tmp_path, capsys):
    manifest_path = str(tmp_path / "manifest.json")
    stats_path = str(tmp_path / "stats.json")
    cache_dir = str(tmp_path / "cache")
    code = main(
        [
            "batch", str(corpus),
            "--args", "48",
            "--jobs", "2",
            "--cache-dir", cache_dir,
            "--manifest", manifest_path,
            "--stats-out", stats_path,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "batch: 3/3 ok" in out
    assert "cache:" in out

    with open(manifest_path) as handle:
        manifest = json.load(handle)
    assert [p["path"] for p in manifest["programs"]] == [
        "p0.c", "p1.c", "p2.c",
    ]
    with open(stats_path) as handle:
        stats = json.load(handle)
    assert stats["programs"] == 3 and stats["ok"] == 3

    # Second (warm) run: identical manifest bytes, >=90% hit rate.
    manifest2_path = str(tmp_path / "manifest2.json")
    stats2_path = str(tmp_path / "stats2.json")
    code = main(
        [
            "batch", str(corpus),
            "--args", "48",
            "--jobs", "2",
            "--cache-dir", cache_dir,
            "--manifest", manifest2_path,
            "--stats-out", stats2_path,
        ]
    )
    assert code == 0
    with open(manifest_path, "rb") as a, open(manifest2_path, "rb") as b:
        assert a.read() == b.read()
    with open(stats2_path) as handle:
        assert json.load(handle)["cache"]["hit_rate"] >= 0.9


def test_batch_cli_failure_exit_code(corpus, tmp_path, capsys):
    (corpus / "bad.c").write_text("int main( { }")
    code = main(
        ["batch", str(corpus), "--args", "48", "--jobs", "1",
         "--cache-dir", str(tmp_path / "cache")]
    )
    assert code == 1
    assert "error" in capsys.readouterr().out


def test_batch_cli_unknown_input(tmp_path, capsys):
    code = main(
        ["batch", str(tmp_path / "nope-*.c"), "--cache-dir",
         str(tmp_path / "cache")]
    )
    assert code == 2


def test_batch_cli_obs_summary(corpus, tmp_path, capsys):
    code = main(
        ["batch", str(corpus), "--args", "48", "--jobs", "1",
         "--cache-dir", str(tmp_path / "cache"), "--obs-summary"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "batch.cache.misses" in out


def test_explain_cache_dir_probe(corpus, tmp_path, capsys):
    program = str(corpus / "p0.c")
    cache_dir = str(tmp_path / "cache")

    assert main(["explain", program, "--args", "48",
                 "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "result cache" in out
    assert "MISS" in out

    # Warm the cache through a batch run, then explain sees a HIT.
    assert main(["batch", program, "--args", "48", "--jobs", "1",
                 "--cache-dir", cache_dir, "--quiet"]) == 0
    capsys.readouterr()
    assert main(["explain", program, "--args", "48",
                 "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "HIT" in out
    assert "loop records present" in out
