"""Workload suite sanity tests: every benchmark compiles, runs
deterministically, and exhibits its designed character."""

import pytest

from repro.benchsuite import BY_NAME, SUITE
from repro.frontend import compile_minic
from repro.ir import verify_module
from repro.machine.timing import TimingModel, TimingTracer
from repro.profiling import Machine
from repro.ssa import build_ssa, optimize


@pytest.fixture(scope="module")
def compiled():
    modules = {}
    for bench in SUITE:
        module = compile_minic(bench.source, name=bench.name)
        verify_module(module)
        for func in module.functions.values():
            build_ssa(func)
            optimize(func)
            verify_module(module, ssa=False)
        modules[bench.name] = module
    return modules


def test_suite_has_ten_benchmarks():
    assert len(SUITE) == 10
    assert set(BY_NAME) == {
        "bzip2",
        "crafty",
        "gap",
        "gcc",
        "gzip",
        "mcf",
        "parser",
        "twolf",
        "vortex",
        "vpr",
    }


@pytest.mark.parametrize("bench", SUITE, ids=lambda b: b.name)
def test_benchmark_runs_deterministically(bench, compiled):
    module = compiled[bench.name]
    machine1 = Machine(module)
    r1 = machine1.run("main", [bench.train_n])
    machine2 = Machine(module)
    r2 = machine2.run("main", [bench.train_n])
    assert r1 == r2
    assert isinstance(r1, int)


@pytest.mark.parametrize("bench", SUITE, ids=lambda b: b.name)
def test_benchmark_has_loops(bench, compiled):
    from repro.analysis.loops import LoopNest

    module = compiled[bench.name]
    nest = LoopNest.build(module.function("main"))
    assert len(nest.loops) >= 2


def _ipc_of(module, n):
    tracer = TimingTracer(TimingModel())
    machine = Machine(module)
    machine.add_tracer(tracer)
    machine.run("main", [n])
    return tracer.ipc


def test_mcf_has_lowest_ipc_band(compiled):
    """Table 1 shape: the pointer-chasing benchmarks (mcf, vortex) sit
    far below the compute-dense ones (gzip, bzip2, crafty)."""
    ipc = {
        name: _ipc_of(module, BY_NAME[name].train_n)
        for name, module in compiled.items()
    }
    assert ipc["mcf"] < 0.8
    assert ipc["vortex"] < 1.0
    assert ipc["gzip"] > 1.2
    assert ipc["bzip2"] > 1.2
    assert ipc["mcf"] < ipc["gzip"]
    assert ipc["vortex"] < ipc["crafty"]
