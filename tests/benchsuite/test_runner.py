"""Runner smoke tests: one benchmark end to end, plus invariants that
must hold for every run the harness produces."""

import pytest

from repro.benchsuite import BY_NAME, Benchmark
from repro.benchsuite.runner import run_benchmark
from repro.core import basic_config, best_config

#: A trimmed copy of gap so the smoke test stays fast.
SMALL = Benchmark(
    name="gap_small",
    description="trimmed gap for runner tests",
    source=BY_NAME["gap"].source,
    train_n=300,
    eval_n=600,
)


@pytest.fixture(scope="module")
def best_run():
    return run_benchmark(SMALL, best_config(), "best")


def test_transformed_program_matches_baseline(best_run):
    assert best_run.result_value == best_run.base_result_value


def test_base_metrics_populated(best_run):
    assert best_run.base_cycles > 0
    assert best_run.base_instructions > 0
    assert 0.1 < best_run.base_ipc < 6.0


def test_loop_reports_consistent(best_run):
    for report in best_run.loops:
        stats = report.stats
        assert stats.iterations > 0
        assert stats.seq_cycles > 0
        assert stats.spt_cycles > 0
        assert 0.0 <= stats.misspeculation_ratio <= 1.0
        assert 0.0 <= stats.reexecution_ratio <= 1.0
        assert stats.prefork_fraction < 1.0


def test_program_speedup_consistent(best_run):
    # Substituting simulated loop times must keep the total positive
    # and the speedup in a sane band.
    assert best_run.program_spt_cycles > 0
    assert 0.5 < best_run.program_speedup < 3.0


def test_coverage_bounded(best_run):
    assert 0.0 <= best_run.coverage <= 1.0


def test_basic_never_slower_than_margin():
    run = run_benchmark(SMALL, basic_config(), "basic")
    assert run.result_value == run.base_result_value
    assert run.program_speedup > 0.97
