// Golden: a two-level nest; only one level may become an SPT loop
// (single speculative core), exercising nest-conflict resolution.
global int grid[1024];

int main(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        int row = (i & 31) << 5;
        for (int j = 0; j < 32; j++) {
            int v = grid[(row + j) & 1023];
            int w = (v * 7 + j) ^ (v >> 2);
            grid[(row + j) & 1023] = w & 511;
            total += w & 15;
        }
    }
    return total;
}
