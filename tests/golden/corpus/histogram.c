// Golden: indirect updates into pointer-reached (aliased) data; the
// may-alias store->load dependences only profiling can discount.
global int table[256] aliased;
global int keys[512];

int main(int n) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        int k = ((i * 131) + (i >> 3)) & 255;
        int bucket = keys[(k * 3) & 511] & 255;
        table[bucket] = table[bucket] + 1;
        int t = table[(bucket + 16) & 255];
        sum += (t ^ k) & 31;
    }
    return sum;
}
