// Golden: the hot loop is a while loop -- only the anticipated
// compilation may unroll it, and its small body tests the min-size
// criterion under the basic/best presets.
global int work[128];

int main(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        int v = (i * 2654435761) & 65535;
        while (v > 3) {
            v = (v >> 1) + (v & 1);
            acc += v & 3;
        }
        work[i & 127] = acc & 255;
    }
    return acc;
}
