// Golden: a clean DOALL-style loop -- the only carried dependence is
// the induction variable, so the basic compilation should select it.
global int data[512];
global int out[512];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 511];
        int a = x * 3 + i;
        int b = (a << 2) ^ x;
        out[i & 511] = b & 1023;
        s += b & 31;
    }
    return s;
}
