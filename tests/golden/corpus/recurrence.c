// Golden: a genuine loop-carried value recurrence on `s` -- every
// iteration needs the previous one, so misspeculation cost stays high
// and the loop must be rejected.
global int data[256];

int main(int n) {
    int s = 1;
    for (int i = 0; i < n; i++) {
        s = ((s * 5 + data[i & 255]) ^ (s >> 3)) & 4095;
        data[i & 255] = s & 63;
        s = s + ((s & 7) * (i & 15));
        s = (s ^ (s << 1)) & 8191;
    }
    return s;
}
