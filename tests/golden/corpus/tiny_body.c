// Golden: a loop body too small to amortize the fork overhead
// (rejected by criterion 3a unless the unroller can grow it).
global int bits[64];

int main(int n) {
    int c = 0;
    for (int i = 0; i < n; i++) {
        c += bits[i & 63] & 1;
    }
    return c;
}
