"""Golden regression tests: the batch manifest over the checked-in
MiniC corpus must match the committed snapshot byte for byte.

The snapshot pins, per program and per loop: the classification
category, the optimal partition's misspeculation cost and pre-fork
size, and the selection verdict.  Any compiler-behaviour change shows
up as a readable JSON diff; regenerate intentionally with::

    pytest tests/golden --update-goldens

Also asserted here: the manifest is byte-stable across worker counts
(``--jobs 1`` vs ``--jobs 4``) -- scheduling must never leak into
results.
"""

import os

import pytest

from repro.batch import manifest_to_bytes, run_batch

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
EXPECTED_PATH = os.path.join(
    os.path.dirname(__file__), "expected", "manifest.json"
)

#: The corpus workload every golden run uses (pinned: it is part of
#: what the snapshot means).
GOLDEN_ARGS = (96,)
GOLDEN_CONFIG = "best"


def golden_batch(tmp_path, jobs):
    result = run_batch(
        [CORPUS_DIR],
        config_name=GOLDEN_CONFIG,
        args=GOLDEN_ARGS,
        jobs=jobs,
        cache_dir=str(tmp_path / f"cache-jobs{jobs}"),
    )
    assert result.ok, [
        e for e in result.entries if e.get("status") != "ok"
    ]
    return result


@pytest.fixture(scope="module")
def jobs1_manifest(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("golden-j1")
    return manifest_to_bytes(golden_batch(tmp, jobs=1).manifest)


def test_manifest_matches_golden(jobs1_manifest, update_goldens):
    if update_goldens:
        os.makedirs(os.path.dirname(EXPECTED_PATH), exist_ok=True)
        with open(EXPECTED_PATH, "wb") as handle:
            handle.write(jobs1_manifest)
        pytest.skip("golden snapshot regenerated")
    assert os.path.exists(EXPECTED_PATH), (
        "no golden snapshot checked in; run "
        "`pytest tests/golden --update-goldens` and commit the result"
    )
    with open(EXPECTED_PATH, "rb") as handle:
        expected = handle.read()
    assert jobs1_manifest == expected, (
        "batch manifest deviates from the golden snapshot; if the "
        "change is intentional, refresh with --update-goldens"
    )


def test_manifest_byte_stable_across_jobs(jobs1_manifest, tmp_path):
    jobs4 = manifest_to_bytes(golden_batch(tmp_path, jobs=4).manifest)
    assert jobs4 == jobs1_manifest


def test_golden_covers_interesting_outcomes(jobs1_manifest):
    """The corpus must keep exercising a spread of selection outcomes,
    or the goldens silently stop guarding anything interesting."""
    import json

    manifest = json.loads(jobs1_manifest)
    categories = set()
    selected = 0
    for program in manifest["programs"]:
        selected += len(program["summary"]["selected"])
        for candidate in program["summary"]["candidates"]:
            categories.add(candidate["category"])
    assert selected >= 2
    assert "valid_partition" in categories
    assert "high_cost" in categories
    assert len(categories) >= 4
