"""Differential tests for hot-trace (superblock) compilation.

The trace-compiled configuration (``CompiledMachine(trace=True)``) must
be observationally identical to both the reference interpreter and the
block-compiled fast path: same results, memory, executed-instruction
counts, and edge/block profiles -- including under forced guard
failures (``REPRO_TRACE_BAILOUT``), trace invalidation, and fuel
exhaustion mid-trace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite import SUITE
from repro.frontend import compile_minic
from repro.profiling import (
    CompiledMachine,
    EdgeProfile,
    FuelExhausted,
    Machine,
)
from repro.profiling.compiled import _BLACKLISTED
from repro.ssa import build_ssa, optimize
from tests.integration.test_equivalence_random import _STMTS, _build_source

import pytest

#: Low threshold so even short test programs go hot quickly.
HOT = 4


def _prepare(source, name="m"):
    module = compile_minic(source, name=name)
    for func in module.functions.values():
        build_ssa(func)
        optimize(func)
    return module


def _trace_machine(module, **kw):
    kw.setdefault("trace_hot_threshold", HOT)
    return CompiledMachine(module, trace=True, **kw)


def _assert_same_run(module, args, trace_kw=None):
    """Reference vs block-compiled vs trace-compiled: one run each."""
    ref = Machine(module)
    ref_result = ref.run("main", list(args))
    fast = CompiledMachine(module)
    fast_result = fast.run("main", list(args))
    traced = _trace_machine(module, **(trace_kw or {}))
    traced_result = traced.run("main", list(args))
    assert traced_result == fast_result == ref_result
    assert traced.memory == fast.memory == ref.memory
    assert traced.executed == fast.executed == ref.executed
    return traced


_LOOPY = """
global int data[64];
int helper(int x) {
    int t = 0;
    for (int j = 0; j < 8; j++) {
        if ((x + j) % 3 == 0) { t += j; } else { t -= 1; }
    }
    return t;
}
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        data[i % 64] = i * 3;
        if (i % 7 < 3) { s += data[i % 64]; } else { s += helper(i); }
    }
    return s;
}
"""


@pytest.mark.parametrize("bench", SUITE, ids=lambda b: b.name)
def test_benchsuite_trace_differential(bench):
    """Every benchsuite program runs identically under traces, and the
    hot ones actually execute trace passes (non-vacuous)."""
    module = _prepare(bench.source, name=bench.name)
    traced = _assert_same_run(module, [bench.train_n])
    report = traced.trace_report()
    assert sum(s["passes"] for s in report.values()) > 0, bench.name


@pytest.mark.parametrize("bench", SUITE[:3], ids=lambda b: b.name)
def test_trace_edge_profiles_match(bench):
    """Edge/block/call profiles are bit-identical with traces on (the
    inline profile bumps replace on_block/on_edge dispatch exactly)."""
    module = _prepare(bench.source, name=bench.name)
    baseline = EdgeProfile()
    fast = CompiledMachine(module)
    fast.add_tracer(baseline)
    fast.run("main", [bench.train_n])

    profile = EdgeProfile()
    traced = _trace_machine(module)
    traced.add_tracer(profile)
    traced.run("main", [bench.train_n])

    assert profile.edge_counts == baseline.edge_counts
    assert profile.block_counts == baseline.block_counts
    assert profile.call_counts == baseline.call_counts


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, len(_STMTS) - 1), min_size=1, max_size=6),
    st.integers(0, 80),
)
def test_random_programs_trace_differential(stmt_indices, n):
    """Random loop programs execute identically under traces."""
    module = _prepare(_build_source(stmt_indices))
    _assert_same_run(module, [n])


def test_forced_guard_failures(monkeypatch):
    """REPRO_TRACE_BAILOUT drives every guard fall-back path: results
    stay identical while side exits are forced constantly."""
    for k in (1, 3, 7):
        monkeypatch.setenv("REPRO_TRACE_BAILOUT", str(k))
        module = _prepare(_LOOPY)
        traced = _assert_same_run(module, [200])
        assert traced._trace_bailout == k
        report = traced.trace_report()
        assert sum(s["side_exits"] for s in report.values()) > 0
    monkeypatch.delenv("REPRO_TRACE_BAILOUT")
    # Bail counter state must not leak into an unforced machine.
    module = _prepare(_LOOPY)
    assert _trace_machine(module)._trace_bailout == 0


def test_fuel_exhaustion_with_traces():
    """Traces settle fuel at pass granularity but still enforce the
    budget, and clean runs consume exactly the reference fuel."""
    module = _prepare(_LOOPY)
    ref = Machine(module)
    ref.run("main", [150])
    budget = ref.executed

    ok = _trace_machine(module, fuel=budget)
    ok.run("main", [150])
    assert ok.executed == budget

    with pytest.raises(FuelExhausted):
        _trace_machine(module, fuel=budget // 2).run("main", [150])


def test_invalidate_traces_and_rerun():
    """Explicit invalidation drops installed traces; the machine
    re-records and still agrees with itself."""
    module = _prepare(_LOOPY)
    machine = _trace_machine(module)
    first = machine.run("main", [300])
    assert any(
        code.traces for code in machine._code.values()
    ), "expected traces to be installed"
    machine.invalidate_traces()
    assert all(not code.traces for code in machine._code.values())
    assert machine.trace_invalidations > 0
    assert machine.run("main", [300]) == first


def test_trace_report_shape():
    module = _prepare(_LOOPY)
    machine = _trace_machine(module)
    machine.run("main", [300])
    report = machine.trace_report()
    assert report
    for key, stats in report.items():
        func, _, entry = key.partition(":")
        assert stats["func"] == func
        assert stats["entry"] == entry
        for field in (
            "path", "cyclic", "compiles", "entries", "passes",
            "side_exits", "ops_on_trace", "invalidations",
            "guard_failure_rate",
        ):
            assert field in stats
        assert stats["passes"] >= 0
        assert 0.0 <= stats["guard_failure_rate"] or stats["passes"] == 0


def test_blacklisting_stops_recompilation():
    """An entry that keeps invalidating is eventually blacklisted
    instead of being re-recorded forever."""
    module = _prepare(_LOOPY)
    machine = _trace_machine(module)
    machine.run("main", [50])
    code = next(
        code for code in machine._code.values() if code.traces
    )
    entry, trace = next(
        (k, v) for k, v in code.traces.items() if v is not _BLACKLISTED
    )
    # Drive the drop path until the 3-compile strike limit hits.
    for _ in range(5):
        tr = code.traces.get(entry)
        if tr is _BLACKLISTED:
            break
        code._drop_trace(entry, tr)
        stats = machine._trace_stats_for(code.func.name, entry)
        stats.compiles += 1  # simulate a re-install of the same path
        code.traces.setdefault(entry, tr)
    # Once blacklisted, execution still works (driver fallback).
    machine.run("main", [50])


def test_traces_disabled_under_per_instr_hooks():
    """A per-instr tracer forces the fully-hooked path: no traces are
    recorded, and the event stream matches the reference exactly."""
    from tests.profiling.test_compiled import RecordingTracer

    module = _prepare(_LOOPY)
    ref = Machine(module)
    ref_tracer = RecordingTracer()
    ref.add_tracer(ref_tracer)
    ref_result = ref.run("main", [60])

    traced = _trace_machine(module)
    fast_tracer = RecordingTracer()
    traced.add_tracer(fast_tracer)
    traced_result = traced.run("main", [60])

    assert traced_result == ref_result
    assert fast_tracer.events == ref_tracer.events
    assert not any(code.traces for code in traced._code.values())


def test_trace_source_is_inspectable():
    """Installed traces retain their generated source (debug surface)."""
    module = _prepare(_LOOPY)
    machine = _trace_machine(module)
    machine.run("main", [300])
    sources = [
        trace.source
        for code in machine._code.values()
        for trace in code.traces.values()
        if trace is not _BLACKLISTED
    ]
    assert sources
    assert all("def _trace(env, prev):" in src for src in sources)
