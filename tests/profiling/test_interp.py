"""Interpreter semantics tests."""

import pytest

from repro.ir import parse_module
from repro.profiling.interp import FuelExhausted, InterpError, Machine, run_module

SUM_LOOP = """\
module t
func main(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  s = add s, i
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def test_sum_loop():
    result, _ = run_module(parse_module(SUM_LOOP), args=[10])
    assert result == 45


def test_memory_and_arrays():
    module = parse_module(
        """\
module t
global acc[1]
func main(n) {
  local buf[16]
entry:
  base = addr buf
  g = addr acc
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  v = mul i, i
  store base, i, v !buf
  i = add i, 1
  jump head
exit:
  x = load base, 3 !buf
  store g, 0, x !acc
  ret x
}
"""
    )
    result, machine = run_module(module, args=[8])
    assert result == 9
    assert machine.memory[machine.symbols["acc"]] == 9


def test_phi_execution():
    module = parse_module(
        """\
module t
func main(x) {
entry:
  c = lt x, 0
  br c, neg, pos
neg:
  a = sub 0, x
  jump join
pos:
  a = copy x
  jump join
join:
  r = phi [neg: a, pos: a]
  ret r
}
"""
    )
    assert run_module(module, args=[-5])[0] == 5
    assert run_module(module, args=[7])[0] == 7


def test_user_function_calls():
    module = parse_module(
        """\
module t
func square(x) {
entry:
  y = mul x, x
  ret y
}
func main(n) {
entry:
  a = call square(n)
  b = call square(a)
  ret b
}
"""
    )
    assert run_module(module, args=[3])[0] == 81


def test_intrinsic_call():
    module = parse_module(
        """\
module t
func main(x) {
entry:
  y = call twice(x)
  ret y
}
"""
    )
    result, _ = run_module(
        module, args=[21], intrinsics={"twice": lambda machine, x: 2 * x}
    )
    assert result == 42


def test_division_semantics_are_c_like():
    module = parse_module(
        """\
module t
func main(a, b) {
entry:
  q = div a, b
  r = mod a, b
  s = add q, r
  ret s
}
"""
    )
    # C truncation: -7 / 2 == -3, -7 % 2 == -1.
    assert run_module(module, args=[-7, 2])[0] == -4


def test_division_by_zero_raises():
    module = parse_module(
        """\
module t
func main(a) {
entry:
  q = div a, 0
  ret q
}
"""
    )
    with pytest.raises(InterpError):
        run_module(module, args=[1])


def test_fuel_exhaustion():
    module = parse_module(
        """\
module t
func main() {
entry:
  jump entry2
entry2:
  jump entry
}
"""
    )
    with pytest.raises(FuelExhausted):
        run_module(module, fuel=1000)


def test_spt_markers_are_noops():
    module = parse_module(
        """\
module t
func main(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  i = add i, 1
  spt_fork 0
  s = add s, i
  jump head
exit:
  spt_kill 0
  ret s
}
"""
    )
    assert run_module(module, args=[4])[0] == 10


def test_undefined_variable_raises():
    module = parse_module(
        """\
module t
func main() {
entry:
  y = add x, 1
  ret y
}
"""
    )
    with pytest.raises(InterpError):
        run_module(module)


def test_call_arity_mismatch_raises():
    module = parse_module(
        """\
module t
func f(a, b) {
entry:
  ret a
}
func main() {
entry:
  x = call f(1)
  ret x
}
"""
    )
    with pytest.raises(InterpError):
        run_module(module)
