"""Edge, dependence, and value profiler tests."""

from repro.analysis.loops import LoopNest
from repro.ir import parse_module
from repro.profiling import (
    DependenceProfile,
    EdgeProfile,
    ValueProfile,
    run_module,
)

BRANCHY = """\
module t
func main(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  m = mod i, 4
  z = eq m, 0
  br z, hit, skip
hit:
  s = add s, 1
  jump latch
skip:
  jump latch
latch:
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def _profiled(source, args, tracers):
    module = parse_module(source)
    run_module(module, args=args, tracers=tracers)
    return module


def test_edge_counts_and_branch_prob():
    profile = EdgeProfile()
    module = _profiled(BRANCHY, [100], [profile])
    assert profile.edge_count("main", "head", "body") == 100
    assert profile.edge_count("main", "head", "exit") == 1
    assert profile.edge_count("main", "body", "hit") == 25
    assert abs(profile.branch_prob("main", "body", "hit") - 0.25) < 1e-9
    assert abs(profile.branch_prob("main", "head", "body") - 100 / 101) < 1e-9


def test_branch_prob_fallback_without_data():
    profile = EdgeProfile()
    assert profile.branch_prob("main", "nowhere", "elsewhere") == 0.5


def test_trip_count():
    profile = EdgeProfile()
    module = _profiled(BRANCHY, [100], [profile])
    func = module.function("main")
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    assert abs(profile.trip_count(func, loop) - 101.0) < 1e-9


CARRIED = """\
module t
func main(n) {
  local buf[64]
entry:
  base = addr buf
  i = copy 1
  store base, 0, 7 !buf
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  prev = sub i, 1
  x = load base, prev !buf
  y = add x, 1
  store base, i, y !buf
  i = add i, 1
  jump head
exit:
  r = load base, 5 !buf
  ret r
}
"""

PRIVATE = """\
module t
func main(n) {
  local tmp[8]
entry:
  base = addr tmp
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  store base, 0, i !tmp
  v = load base, 0 !tmp
  s = add s, v
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def _find_instr(module, func_name, opcode, block):
    for instr in module.function(func_name).block(block).instrs:
        if instr.opcode == opcode:
            return instr
    raise AssertionError(f"no {opcode} in {block}")


def test_cross_iteration_dependence_is_measured():
    module = parse_module(CARRIED)
    profile = DependenceProfile(module)
    run_module(module, args=[40], tracers=[profile])

    func = module.function("main")
    loop = profile.nests["main"].loops[0]
    store = _find_instr(module, "main", "store", "body")
    load = _find_instr(module, "main", "load", "body")
    view = profile.view("main", loop)
    # Every body store at index i is read the next iteration at index i.
    assert view.mem_prob(store, load, cross=True) > 0.9
    assert view.mem_prob(store, load, cross=False) == 0.0


def test_private_buffer_has_intra_but_not_cross_deps():
    module = parse_module(PRIVATE)
    profile = DependenceProfile(module)
    run_module(module, args=[40], tracers=[profile])

    loop = profile.nests["main"].loops[0]
    store = _find_instr(module, "main", "store", "body")
    load = _find_instr(module, "main", "load", "body")
    view = profile.view("main", loop)
    assert view.mem_prob(store, load, cross=False) > 0.9
    assert view.mem_prob(store, load, cross=True) == 0.0
    assert view.covers(store)


def test_uncovered_writer_returns_none():
    module = parse_module(PRIVATE)
    profile = DependenceProfile(module)
    run_module(module, args=[1], tracers=[profile])  # not enough executions
    loop = profile.nests["main"].loops[0]
    store = _find_instr(module, "main", "store", "body")
    load = _find_instr(module, "main", "load", "body")
    view = profile.view("main", loop)
    assert view.mem_prob(store, load, cross=True) is None
    assert not view.covers(store)


STRIDED = """\
module t
func main(n) {
entry:
  x = copy 0
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  x = add x, 2
  i = add i, 1
  jump head
exit:
  ret x
}
"""


def test_value_profile_detects_stride():
    module = parse_module(STRIDED)
    update = _find_instr(module, "main", "binop", "body")
    profile = ValueProfile([update])
    run_module(module, args=[50], tracers=[profile])
    pattern = profile.pattern_for(update)
    assert pattern.kind == "stride"
    assert pattern.stride == 2
    assert pattern.hit_rate > 0.95
    assert update in profile.predictable_instrs(0.9)


def test_value_profile_unpredictable_on_few_samples():
    module = parse_module(STRIDED)
    update = _find_instr(module, "main", "binop", "body")
    profile = ValueProfile([update])
    run_module(module, args=[3], tracers=[profile])
    pattern = profile.pattern_for(update)
    assert not pattern.predictable
