"""Differential tests: the block-compiled interpreter must be
observationally identical to the reference interpreter -- return
values, memory state, executed-instruction counts, and the full tracer
event stream -- over the whole benchmark suite and randomized loop
programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite import SUITE
from repro.frontend import compile_minic
from repro.profiling import (
    CompiledMachine,
    EdgeProfile,
    FuelExhausted,
    InterpError,
    Machine,
    Tracer,
    make_machine,
    run_module,
)
from repro.ssa import build_ssa, optimize
from tests.integration.test_equivalence_random import _STMTS, _build_source

import pytest


class RecordingTracer(Tracer):
    """Overrides every hook and records a normalized event stream."""

    def __init__(self):
        self.events = []

    def on_enter_function(self, func, args):
        self.events.append(("enter", func.name, tuple(args)))

    def on_exit_function(self, func, result):
        self.events.append(("exit", func.name, result))

    def on_block(self, func, block, prev_label):
        self.events.append(("block", func.name, block.label, prev_label))

    def on_edge(self, func, src_label, dst_label):
        self.events.append(("edge", func.name, src_label, dst_label))

    def on_instr(self, func, block, instr):
        self.events.append(("instr", func.name, block.label, id(instr)))

    def on_def(self, instr, value):
        self.events.append(("def", id(instr), value))

    def on_load(self, instr, addr, value):
        self.events.append(("load", id(instr), addr, value))

    def on_store(self, instr, addr, value, old):
        self.events.append(("store", id(instr), addr, value, old))

    def on_call(self, instr, args):
        self.events.append(("call", id(instr), tuple(args)))


def _prepare(source, name="m", ssa=True):
    module = compile_minic(source, name=name)
    if ssa:
        for func in module.functions.values():
            build_ssa(func)
            optimize(func)
    return module


def _run_both(module, args, tracer_factory=None):
    machines = []
    tracers = []
    for cls in (Machine, CompiledMachine):
        machine = cls(module)
        tracer = tracer_factory() if tracer_factory else None
        if tracer is not None:
            machine.add_tracer(tracer)
        result = machine.run("main", list(args))
        machines.append((machine, result))
        tracers.append(tracer)
    (ref, ref_result), (fast, fast_result) = machines
    assert fast_result == ref_result
    assert fast.memory == ref.memory
    assert fast.executed == ref.executed
    return tracers


@pytest.mark.parametrize("bench", SUITE, ids=lambda b: b.name)
def test_benchsuite_differential(bench):
    """Every benchsuite program: same result, memory, fuel, events."""
    module = _prepare(bench.source, name=bench.name)
    ref_tracer, fast_tracer = _run_both(
        module, [bench.train_n], tracer_factory=RecordingTracer
    )
    assert fast_tracer.events == ref_tracer.events


@pytest.mark.parametrize("bench", SUITE[:3], ids=lambda b: b.name)
def test_benchsuite_differential_edge_profile(bench):
    """The profiling configuration (edge hooks only) agrees too."""
    module = _prepare(bench.source, name=bench.name)
    ref_tracer, fast_tracer = _run_both(
        module, [bench.train_n], tracer_factory=EdgeProfile
    )
    assert fast_tracer.edge_counts == ref_tracer.edge_counts
    assert fast_tracer.block_counts == ref_tracer.block_counts
    assert fast_tracer.call_counts == ref_tracer.call_counts


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, len(_STMTS) - 1), min_size=1, max_size=6),
    st.integers(0, 80),
    st.booleans(),
)
def test_random_programs_differential(stmt_indices, n, with_tracer):
    """Random loop programs from the equivalence generator execute
    identically (with and without a full-hook tracer attached)."""
    module = _prepare(_build_source(stmt_indices))
    tracers = _run_both(
        module, [n], tracer_factory=RecordingTracer if with_tracer else None
    )
    if with_tracer:
        ref_tracer, fast_tracer = tracers
        assert fast_tracer.events == ref_tracer.events


def test_fuel_exhaustion_matches():
    """Batched fuel accounting still enforces the budget, and both
    interpreters agree on clean-run fuel consumption."""
    module = _prepare(
        """
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += i; }
            return s;
        }
        """
    )
    ref = Machine(module)
    ref.run("main", [100])
    budget = ref.executed

    ok = CompiledMachine(module, fuel=budget)
    ok.run("main", [100])
    assert ok.executed == budget

    with pytest.raises(FuelExhausted):
        CompiledMachine(module, fuel=budget - 1).run("main", [100])


def test_undefined_variable_message():
    from repro.ir import parse_module

    module = parse_module(
        """
        func main() {
        entry:
          x = add y, 1
          ret x
        }
        """
    )
    with pytest.raises(InterpError, match="use of undefined variable y"):
        CompiledMachine(module).run("main", [])


def test_intrinsics_and_make_machine():
    module = _prepare(
        """
        int main(int n) {
            return ext(n) + 1;
        }
        """,
        ssa=False,
    )
    # `ext` is unknown to the frontend; register it on the machine.
    machine = make_machine(module, fast=True)
    machine.register_intrinsic("ext", lambda m, x: x * 10)
    assert machine.run("main", [4]) == 41

    result, _ = run_module(
        module, args=[4], intrinsics={"ext": lambda m, x: x * 10}, fast=True
    )
    reference, _ = run_module(
        module, args=[4], intrinsics={"ext": lambda m, x: x * 10}, fast=False
    )
    assert result == reference == 41


def test_rerun_after_tracer_change():
    """Compiled code re-specializes when tracers change between runs."""
    module = _prepare(
        """
        global int data[16];
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { data[i & 15] = i; s += data[i & 15]; }
            return s;
        }
        """
    )
    machine = CompiledMachine(module)
    plain = machine.run("main", [32])
    tracer = RecordingTracer()
    machine.add_tracer(tracer)
    traced = machine.run("main", [32])
    assert plain == traced
    assert any(event[0] == "store" for event in tracer.events)
