"""Served-vs-CLI differential battery: the daemon's central invariant.

A served ``compile`` must return the byte-identical manifest entry the
CLI produces for the same (source, config, workload) -- across every
serving tier.  One CLI reference manifest (a real ``python -m repro
batch --manifest`` subprocess over the golden corpus) is diffed, byte
for byte, against manifests assembled from:

* a **cold** serve pass (fresh daemon, empty caches -- every request
  computes);
* a **warm memory** pass (same daemon again -- every request hits the
  in-memory LRU);
* a **warm disk** pass (a *new* daemon over the same cache directory
  -- memory tier empty, every request hits the content-addressed disk
  tier).

Error entries are differentials too: a program that fails to parse
must serve the same structured error entry the CLI emits.
"""

import json
import os
import subprocess
import sys

import pytest

from .conftest import (
    CORPUS_DIR,
    GOLDEN_ARGS,
    GOLDEN_CONFIG,
    compile_params,
    corpus_sources,
    daemon_env,
    served_manifest_bytes,
)

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def cli_manifest(tmp_path_factory):
    """The reference manifest bytes from the actual CLI."""
    scratch = tmp_path_factory.mktemp("cli-ref")
    manifest_path = str(scratch / "manifest.json")
    env = dict(os.environ)
    env.update(daemon_env())
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro", "batch", CORPUS_DIR,
            "--config", GOLDEN_CONFIG,
            "--args", ",".join(str(a) for a in GOLDEN_ARGS),
            "--jobs", "2",
            "--cache-dir", str(scratch / "cache"),
            "--manifest", manifest_path,
            "--quiet",
        ],
        env=env,
        capture_output=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr.decode()
    with open(manifest_path, "rb") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def served_passes(tmp_path_factory):
    """Cold, memory-hit, and disk-hit passes over the corpus.

    Returns ``{pass_name: [response, ...]}`` plus the daemons' exit
    codes; responses are full protocol documents (entry + serve
    sideband)."""
    from repro.serve.client import start_daemon

    scratch = tmp_path_factory.mktemp("served")
    cache_dir = str(scratch / "shared-cache")
    requests = [
        compile_params(name, source) for name, source in corpus_sources()
    ]
    passes = {}
    with start_daemon(workers=2, cache_dir=cache_dir,
                      env=daemon_env()) as first:
        passes["cold"] = [first.client.compile(p) for p in requests]
        passes["memory"] = [first.client.compile(p) for p in requests]
    with start_daemon(workers=2, cache_dir=cache_dir,
                      env=daemon_env()) as second:
        passes["disk"] = [second.client.compile(p) for p in requests]
    passes["exit_codes"] = (first.returncode, second.returncode)
    return passes


def _manifest_of(responses):
    return served_manifest_bytes([r["entry"] for r in responses])


def test_cold_pass_computes_and_matches_cli(served_passes, cli_manifest):
    tiers = [r["serve"]["tier"] for r in served_passes["cold"]]
    assert tiers == ["compute"] * len(tiers)
    assert _manifest_of(served_passes["cold"]) == cli_manifest


def test_memory_pass_hits_and_matches_cli(served_passes, cli_manifest):
    tiers = [r["serve"]["tier"] for r in served_passes["memory"]]
    assert tiers == ["memory"] * len(tiers)
    assert _manifest_of(served_passes["memory"]) == cli_manifest


def test_disk_pass_hits_and_matches_cli(served_passes, cli_manifest):
    tiers = [r["serve"]["tier"] for r in served_passes["disk"]]
    assert tiers == ["disk"] * len(tiers)
    assert _manifest_of(served_passes["disk"]) == cli_manifest


def test_daemons_shut_down_cleanly(served_passes):
    assert served_passes["exit_codes"] == (0, 0)


def test_all_responses_carry_schema_and_ok(served_passes):
    for name in ("cold", "memory", "disk"):
        for response in served_passes[name]:
            assert response["schema"] == "repro-serve/1"
            assert response["entry"]["status"] == "ok"


def test_parse_error_entry_matches_cli(daemon_factory, tmp_path):
    """A broken program serves the same structured error entry the CLI
    batch path emits (modulo the manifest's volatile-field strip)."""
    broken = "int main(int n) { this is not minic ;;; }\n"
    program = tmp_path / "broken.c"
    program.write_text(broken)

    from repro.batch import ResultCache
    from repro.batch.worker import compile_program_task

    cli_entry, _ = compile_program_task(
        {
            "path": "broken.c",
            "name": "broken",
            "source": broken,
            "config": GOLDEN_CONFIG,
            "config_overrides": {},
            "entry": "main",
            "args": list(GOLDEN_ARGS),
            "fuel": 50_000_000,
        },
        ResultCache(str(tmp_path / "cli-cache")),
    )

    daemon = daemon_factory(workers=1)
    response = daemon.client.compile(compile_params("broken.c", broken))
    served = served_manifest_bytes([response["entry"]])
    reference = served_manifest_bytes([cli_entry])
    assert served == reference
    entry = json.loads(served)["programs"][0]
    assert entry["status"] == "error"
    assert "traceback" not in entry
