"""Concurrency battery: many clients, one daemon, no interference.

The properties under test:

* 50+ concurrent clients with heterogeneous (program, config,
  overrides) requests all get the *right* answer -- every response is
  byte-identical to its group's single-threaded reference, so no
  telemetry, configuration, or cache state leaks between requests that
  interleave arbitrarily across shared worker processes;
* results are deterministic regardless of which tier served them;
* when the admission queue overflows, the surplus requests get clean,
  typed ``queue_full`` rejects (HTTP 429 with a ``Retry-After`` hint)
  -- never a hang -- and the daemon keeps serving afterwards.
"""

import json
import threading

import pytest

from repro.serve.client import ServeError

from .conftest import compile_params, corpus_sources

pytestmark = pytest.mark.serve

CLIENTS = 54


def _request_groups():
    """Heterogeneous request groups: corpus programs under different
    configs/overrides, each group with a distinct expected result."""
    sources = corpus_sources()
    groups = []
    for index, (name, source) in enumerate(sources):
        groups.append(compile_params(name, source))
        groups.append(compile_params(name, source, config="basic"))
        if index % 2 == 0:
            groups.append(
                compile_params(
                    name, source,
                    config_overrides={"cost_fraction": 0.3},
                )
            )
    return groups


def _canonical(entry):
    """The manifest-canonical serialization: volatile fields (which
    tier served it, the cache key) are stripped exactly as
    ``build_manifest`` strips them -- byte-identical *results* are the
    invariant, not identical cache provenance."""
    stable = {
        key: value
        for key, value in entry.items()
        if key not in ("cached", "program_key", "traceback")
    }
    return json.dumps(stable, sort_keys=True)


def test_concurrent_clients_no_cross_request_leakage(daemon_factory):
    daemon = daemon_factory(workers=4, extra_args=["--queue-limit", "128"])
    groups = _request_groups()

    # Single-threaded references first (also warms both cache tiers,
    # so the concurrent phase exercises memory hits *and* recomputes).
    references = []
    for params in groups:
        response = daemon.client.compile(params)
        references.append(_canonical(response["entry"]))

    results = [None] * CLIENTS
    failures = [None] * CLIENTS

    def client_body(slot):
        try:
            client = daemon.new_client()
            try:
                params = groups[slot % len(groups)]
                response = client.compile(params)
                results[slot] = _canonical(response["entry"])
            finally:
                client.close()
        except Exception as exc:  # noqa: BLE001 - report via failures
            failures[slot] = exc

    threads = [
        threading.Thread(target=client_body, args=(slot,))
        for slot in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180)
        assert not thread.is_alive(), "a client hung"
    assert all(failure is None for failure in failures), [
        f for f in failures if f is not None
    ]
    for slot in range(CLIENTS):
        expected = references[slot % len(groups)]
        assert results[slot] == expected, (
            f"client {slot} got a different entry than the "
            f"single-threaded reference for its request group"
        )

    health = daemon.client.healthz()
    assert health["pool"]["crashes"] == 0
    assert health["inflight"] == 0
    assert daemon.stop() == 0


def test_interleaving_does_not_change_results(daemon_factory):
    """Two concurrent bursts in opposite orders produce identical
    per-group entries: scheduling cannot leak into results."""
    daemon = daemon_factory(workers=3, extra_args=["--queue-limit", "64"])
    groups = _request_groups()[:8]

    def burst(order):
        out = {}
        lock = threading.Lock()

        def one(index):
            client = daemon.new_client()
            try:
                response = client.compile(groups[index])
                with lock:
                    out[index] = _canonical(response["entry"])
            finally:
                client.close()

        threads = [
            threading.Thread(target=one, args=(index,)) for index in order
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
            assert not thread.is_alive()
        return out

    forward = burst(list(range(len(groups))))
    backward = burst(list(reversed(range(len(groups)))))
    assert forward == backward
    assert daemon.stop() == 0


def test_queue_overflow_rejects_cleanly(daemon_factory):
    """With one worker and a tiny admission queue, a thundering herd
    splits into served requests and typed 429s -- nothing hangs, and
    the daemon serves normally afterwards."""
    daemon = daemon_factory(
        workers=1,
        extra_args=["--queue-limit", "2"],
    )
    name, source = corpus_sources()[1]  # nested.c: the slowest program
    herd = 24
    outcomes = [None] * herd

    barrier = threading.Barrier(herd)

    def member(slot):
        client = daemon.new_client()
        try:
            barrier.wait(timeout=60)
            try:
                # Unique path per slot defeats the memory tier without
                # changing the program (path is not part of the key --
                # but a distinct source comment is).
                response = client.compile(
                    compile_params(
                        f"m{slot}.c", f"// herd {slot}\n" + source
                    )
                )
                outcomes[slot] = ("ok", response["serve"]["tier"])
            except ServeError as exc:
                outcomes[slot] = ("rejected", exc)
        finally:
            client.close()

    threads = [
        threading.Thread(target=member, args=(slot,))
        for slot in range(herd)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180)
        assert not thread.is_alive(), "an overflow client hung"

    served = [o for o in outcomes if o and o[0] == "ok"]
    rejected = [o for o in outcomes if o and o[0] == "rejected"]
    assert len(served) + len(rejected) == herd
    assert served, "admission control must let some requests through"
    assert rejected, (
        "a 24-deep herd against queue-limit 2 must overflow admission"
    )
    for _, exc in rejected:
        assert exc.http_status == 429
        assert exc.code == "queue_full"
        assert exc.retry_after is not None and exc.retry_after > 0

    # The daemon is still healthy and serving.
    response = daemon.client.compile(compile_params(name, source))
    assert response["entry"]["status"] == "ok"
    health = daemon.client.healthz()
    assert health["inflight"] == 0
    metrics = daemon.client.metrics()
    assert metrics["counters"]["serve.rejected.queue_full"] == len(rejected)
    assert daemon.stop() == 0
