"""Resilience battery: the daemon under chaos.

Worker deaths (``$REPRO_SERVE_CRASH_ON`` hard-exits a worker right
after it claims a matching request), in-process faults
(``$REPRO_FAULT``), and hostile inputs (malformed JSON, oversized
bodies, garbage endpoints).  In every scenario the daemon must answer
every request with a typed response -- retried to success, contained
as a structured degradation, or cleanly rejected -- keep serving
afterwards, and shut down with exit code 0 leaving no live socket."""

import json
import socket

import pytest

from repro.serve.client import ServeError

from .conftest import compile_params, corpus_sources

pytestmark = pytest.mark.serve


def test_crashed_worker_respawns_and_retry_succeeds(
    daemon_factory, tmp_path
):
    """One injected crash: the victim's request is retried on a
    respawned warm worker and *succeeds*; the crash is visible in the
    pool stats but not in the answer."""
    tokens = tmp_path / "crash-tokens"
    tokens.mkdir()
    daemon = daemon_factory(
        workers=2,
        env={
            "REPRO_SERVE_CRASH_ON": "victim",
            "REPRO_SERVE_CRASH_TOKENS": f"{tokens}:1",
        },
    )
    sources = corpus_sources()
    response = daemon.client.compile(
        compile_params("victim.c", sources[0][1])
    )
    assert response["entry"]["status"] == "ok"
    assert response["serve"]["attempts"] == 2
    health = daemon.client.healthz()
    assert health["pool"]["crashes"] == 1
    assert health["pool"]["respawns"] == 1
    assert health["pool"]["retries"] == 1
    assert health["pool"]["alive"] == 2

    # Unaffected requests flow normally on the respawned capacity.
    other = daemon.client.compile(
        compile_params(sources[1][0], sources[1][1])
    )
    assert other["entry"]["status"] == "ok"
    assert daemon.stop() == 0


def test_persistent_crash_becomes_contained_entry(daemon_factory):
    """A request whose worker dies on every attempt resolves as a
    structured ``crashed`` entry -- a contained degradation the client
    can reason about, never a hang or a dead daemon."""
    daemon = daemon_factory(
        workers=2, env={"REPRO_SERVE_CRASH_ON": "doomed"}
    )
    sources = corpus_sources()
    response = daemon.client.compile(
        compile_params("doomed.c", sources[0][1])
    )
    entry = response["entry"]
    assert entry["status"] == "crashed"
    assert entry["error"]["exitcode"] == 13
    assert response["serve"]["tier"] == "crashed"
    assert response["serve"]["attempts"] == 2

    health = daemon.client.healthz()
    assert health["pool"]["crashes"] == 2
    assert health["pool"]["alive"] == 2  # both deaths respawned

    # The same daemon still compiles everything else.
    for name, source in sources[:2]:
        ok = daemon.client.compile(compile_params(name, source))
        assert ok["entry"]["status"] == "ok"
    assert daemon.stop() == 0


def test_injected_service_fault_is_answered_and_survived(daemon_factory):
    """``REPRO_FAULT=serve.request:raise:2``: the first two requests
    hit a synthetic fault at the service boundary and get typed 500s;
    the third is served normally."""
    daemon = daemon_factory(
        workers=1, env={"REPRO_FAULT": "serve.request:raise:2"}
    )
    name, source = corpus_sources()[0]
    for _ in range(2):
        with pytest.raises(ServeError) as excinfo:
            daemon.client.compile(compile_params(name, source))
        assert excinfo.value.http_status == 500
        assert excinfo.value.code == "internal"
        assert "FaultInjected" in str(excinfo.value)
    response = daemon.client.compile(compile_params(name, source))
    assert response["entry"]["status"] == "ok"
    assert daemon.stop() == 0


def test_worker_phase_fault_degrades_not_dies(daemon_factory):
    """An in-worker pipeline fault (``search:raise``) is contained by
    the phase firewalls: the served entry is still ``ok`` and records
    the degradations, exactly as the CLI would."""
    daemon = daemon_factory(workers=1, env={"REPRO_FAULT": "search:raise"})
    name, source = corpus_sources()[0]
    response = daemon.client.compile(compile_params(name, source))
    entry = response["entry"]
    assert entry["status"] == "ok"
    assert entry["summary"]["degradations"], (
        "the injected phase fault must surface as a degradation record"
    )
    assert daemon.stop() == 0


def test_malformed_and_hostile_inputs_never_kill_the_daemon(
    daemon_factory,
):
    daemon = daemon_factory(workers=1)
    client = daemon.client

    # Not JSON at all.
    status, raw = client.compile_raw(b"this is not json{{{")
    assert status == 400
    assert json.loads(raw)["error"]["code"] == "bad_request"

    # Valid JSON, invalid params (typed rejection, not a 500).
    for params in (
        {"source": 17},
        {"source": "int main(int n){return n;}", "fuel": -5},
        {"source": "int main(int n){return n;}", "args": ["x"]},
        {"source": "int main(int n){return n;}", "wat": True},
        [1, 2, 3],
    ):
        status, raw = client.compile_raw(json.dumps(params).encode())
        assert status == 400, params
        assert json.loads(raw)["error"]["code"] == "bad_request"

    # Oversized body: rejected with 413 without being parsed.
    daemon_small = daemon_factory(
        workers=1, extra_args=["--max-body-bytes", "4096"]
    )
    big = json.dumps({"source": "x" * 100_000}).encode()
    status, raw = daemon_small.client.compile_raw(big)
    assert status == 413
    assert json.loads(raw)["error"]["code"] == "oversized"

    # Unknown endpoint.
    status, raw = client.compile_raw(b"{}")
    assert status == 400  # /compile with empty params: missing source
    connection_status, _, body = client._request("GET", "/nope")
    assert connection_status == 404
    assert json.loads(body)["error"]["code"] == "unknown_method"

    # After all of that, both daemons still serve real work.
    name, source = corpus_sources()[0]
    for target in (daemon, daemon_small):
        response = target.client.compile(compile_params(name, source))
        assert response["entry"]["status"] == "ok"
        assert target.stop() == 0


def test_shutdown_leaves_no_live_socket(daemon_factory):
    """After a graceful stop the port is fully released: a fresh
    connection attempt is refused, not accepted by a zombie."""
    daemon = daemon_factory(workers=1)
    name, source = corpus_sources()[0]
    assert daemon.client.compile(compile_params(name, source))[
        "entry"
    ]["status"] == "ok"
    port = daemon.port
    assert daemon.stop() == 0
    with pytest.raises(OSError):
        probe = socket.create_connection(("127.0.0.1", port), timeout=2)
        # Connecting may succeed transiently in TIME_WAIT corner cases;
        # an immediate read must then see EOF, which we promote to the
        # expected refusal.
        try:
            probe.settimeout(2)
            if probe.recv(1) == b"":
                raise ConnectionRefusedError("listener gone (EOF)")
        finally:
            probe.close()
