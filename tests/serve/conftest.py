"""Shared fixtures for the serving-daemon test battery.

Every test talks to a *real* daemon: a ``python -m repro serve``
subprocess spawned through :func:`repro.serve.client.start_daemon`,
with a hygienic environment (no inherited fault-injection or cache
variables) and a per-test cache directory.  The golden MiniC corpus
and its pinned workload are the same ones the batch goldens use, so
served results are directly diffable against the committed manifest
world.
"""

import os

import pytest

from repro.batch import build_manifest, manifest_to_bytes
from repro.core.config import anticipated_config, basic_config, best_config
from repro.serve.client import start_daemon

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
SRC_DIR = os.path.join(REPO_ROOT, "src")
CORPUS_DIR = os.path.join(REPO_ROOT, "tests", "golden", "corpus")

#: The pinned golden workload (keep in sync with tests/golden).
GOLDEN_ARGS = [96]
GOLDEN_CONFIG = "best"
GOLDEN_ENTRY = "main"
GOLDEN_FUEL = 50_000_000

_CONFIG_FACTORIES = {
    "basic": basic_config,
    "best": best_config,
    "anticipated": anticipated_config,
}


def corpus_paths():
    return sorted(
        os.path.join(CORPUS_DIR, name)
        for name in os.listdir(CORPUS_DIR)
        if name.endswith(".c")
    )


def corpus_sources():
    """``[(basename, source), ...]`` over the golden corpus."""
    out = []
    for path in corpus_paths():
        with open(path, "r", encoding="utf-8") as handle:
            out.append((os.path.basename(path), handle.read()))
    return out


def compile_params(name, source, **overrides):
    params = {
        "source": source,
        "path": name,
        "config": GOLDEN_CONFIG,
        "entry": GOLDEN_ENTRY,
        "args": list(GOLDEN_ARGS),
        "fuel": GOLDEN_FUEL,
    }
    params.update(overrides)
    return params


def served_manifest_bytes(entries, config=GOLDEN_CONFIG,
                          args=GOLDEN_ARGS, entry=GOLDEN_ENTRY,
                          fuel=GOLDEN_FUEL):
    """Assemble served entries into canonical manifest bytes, exactly
    as ``repro batch --manifest`` does."""
    fingerprint = _CONFIG_FACTORIES[config]().fingerprint()
    return manifest_to_bytes(
        build_manifest(entries, config, fingerprint, entry, args, fuel)
    )


def daemon_env(extra=None):
    """Environment overlay for spawned daemons: the repo's ``src`` on
    PYTHONPATH, and any ambient chaos/cache variables neutralized so a
    developer's shell cannot perturb the battery."""
    python_path = SRC_DIR
    inherited = os.environ.get("PYTHONPATH")
    if inherited:
        python_path = python_path + os.pathsep + inherited
    env = {
        "PYTHONPATH": python_path,
        "REPRO_FAULT": "",
        "REPRO_BATCH_CRASH_ON": "",
        "REPRO_SERVE_CRASH_ON": "",
        "REPRO_SERVE_CRASH_TOKENS": "",
        "REPRO_CACHE_DIR": "",
    }
    if extra:
        env.update(extra)
    return env


@pytest.fixture
def daemon_factory(tmp_path):
    """Spawn daemons with automatic teardown; yields the factory.

    Each daemon gets its own cache directory under ``tmp_path`` unless
    the test passes one explicitly (cache-sharing scenarios)."""
    stack = []
    counter = [0]

    def factory(workers=2, cache_dir=None, env=None, extra_args=(),
                **kwargs):
        if cache_dir is None:
            counter[0] += 1
            cache_dir = str(tmp_path / f"cache-{counter[0]}")
        manager = start_daemon(
            workers=workers,
            cache_dir=cache_dir,
            env=daemon_env(env),
            extra_args=extra_args,
            **kwargs,
        )
        handle = manager.__enter__()
        stack.append((manager, handle))
        return handle

    yield factory
    errors = []
    for manager, _handle in reversed(stack):
        try:
            manager.__exit__(None, None, None)
        except Exception as exc:  # noqa: BLE001 - report all teardowns
            errors.append(exc)
    if errors:
        raise errors[0]
