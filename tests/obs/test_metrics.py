"""Metrics primitives: histogram math, the registry, and the exporters.

The histogram's quantile estimates are gated by a hypothesis property:
for any sample set, every estimate lies within one log2 bucket (a
factor of two) of the exact empirical quantile, and is clamped to the
observed [min, max].  The Prometheus exporter's output is validated
line-by-line against the text exposition format grammar.
"""

import json
import math
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Histogram,
    MetricsRegistry,
    Timer,
    metrics_json,
    prometheus_text,
)
from tests.obs.test_telemetry import make_telemetry

# -- histogram bucket / quantile math ---------------------------------------


def test_empty_histogram_snapshot():
    hist = Histogram()
    snap = hist.snapshot()
    assert snap["count"] == 0
    assert snap["sum"] == 0.0
    assert snap["min"] is None and snap["max"] is None
    assert snap["p50"] is None
    assert snap["buckets"] == []


def test_histogram_counts_sum_min_max_exactly():
    hist = Histogram()
    for value in [3.0, 0.25, 17.5, 3.0]:
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(23.75)
    assert hist.min == 0.25
    assert hist.max == 17.5


def test_single_value_histogram_reports_exact_quantiles():
    hist = Histogram()
    hist.observe(42.0)
    # Clamping to [min, max] makes every quantile exact here.
    assert hist.quantile(0.5) == 42.0
    assert hist.quantile(0.99) == 42.0


def test_cumulative_buckets_are_monotonic_and_le_style():
    hist = Histogram()
    for value in [0.7, 1.5, 3.0, 100.0]:
        hist.observe(value)
    buckets = hist.cumulative_buckets()
    counts = [count for _, count in buckets]
    assert counts == sorted(counts)
    assert counts[-1] == hist.count
    # Every bound holds at least the samples <= it.
    for bound, cumulative in buckets:
        exact = sum(1 for v in [0.7, 1.5, 3.0, 100.0] if v <= bound)
        assert cumulative >= exact


def test_histogram_merge_equals_combined_observation():
    left, right, both = Histogram(), Histogram(), Histogram()
    for value in [1.0, 2.0, 64.0]:
        left.observe(value)
        both.observe(value)
    for value in [0.125, 9.0]:
        right.observe(value)
        both.observe(value)
    left.merge(right)
    assert left.snapshot() == both.snapshot()


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.floats(
            min_value=1e-6, max_value=1e9,
            allow_nan=False, allow_infinity=False,
        ),
        min_size=1,
        max_size=60,
    ),
    st.sampled_from([0.5, 0.9, 0.99]),
)
def test_quantile_estimate_within_bucket_resolution(samples, q):
    hist = Histogram()
    for value in samples:
        hist.observe(value)
    estimate = hist.quantile(q)
    ordered = sorted(samples)
    exact = ordered[max(1, math.ceil(q * len(ordered))) - 1]
    # The estimate is clamped to the observed range ...
    assert hist.min <= estimate <= hist.max
    # ... and within one log2 bucket (factor of two) of the exact value.
    assert estimate <= exact * 2.0 * (1 + 1e-9)
    assert estimate >= exact / 2.0 * (1 - 1e-9)


def test_timer_observes_elapsed_milliseconds():
    telemetry, clock = make_telemetry()
    with telemetry.time("step"):
        clock.advance(0.032)
    hist = telemetry.histograms["step"]
    assert hist.count == 1
    assert hist.sum == pytest.approx(32.0)


def test_standalone_timer_context_manager():
    hist = Histogram()
    ticks = iter([1.0, 1.5])
    with Timer(hist, clock=lambda: next(ticks)):
        pass
    assert hist.count == 1
    assert hist.sum == pytest.approx(500.0)


# -- registry ----------------------------------------------------------------


def test_registry_snapshot_shape_and_merge():
    telemetry, clock = make_telemetry()
    with telemetry.span("outer"):
        clock.advance(0.2)
        with telemetry.span("inner"):
            clock.advance(0.1)
    telemetry.count("requests", 3)
    telemetry.gauge("fuel", 17.0)

    registry = MetricsRegistry()
    registry.merge_telemetry(telemetry)
    snap = registry.snapshot()
    assert snap["schema"] == MetricsRegistry.SCHEMA
    assert snap["counters"]["requests"] == 3
    assert snap["gauges"]["fuel"] == 17.0
    # Span self-times arrive as gauges; span latencies as histograms.
    assert snap["gauges"]["span.self_ms.outer"] == pytest.approx(200.0)
    assert snap["gauges"]["span.self_ms.inner"] == pytest.approx(100.0)
    assert snap["histograms"]["span.inner.ms"]["count"] == 1


def test_registry_folds_multiple_runs():
    registry = MetricsRegistry()
    for _ in range(2):
        telemetry, clock = make_telemetry()
        with telemetry.span("phase"):
            clock.advance(0.05)
        telemetry.count("runs")
        registry.merge_telemetry(telemetry)
    snap = registry.snapshot()
    assert snap["counters"]["runs"] == 2
    assert snap["histograms"]["span.phase.ms"]["count"] == 2


# -- exporters ---------------------------------------------------------------

_PROM_HELP_OR_TYPE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$"
)
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
    r"(NaN|[+-]?Inf|[-+]?[0-9.eE+-]+)$"
)


def _build_registry():
    registry = MetricsRegistry()
    registry.count("search.nodes", 25)
    registry.gauge("fuel-left", 12.5)
    for value in [0.4, 1.9, 3.0, 250.0]:
        registry.observe("phase ms", value)
    return registry


def test_prometheus_text_matches_exposition_grammar():
    text = prometheus_text(_build_registry())
    assert text.endswith("\n")
    for line in text.strip().splitlines():
        assert _PROM_HELP_OR_TYPE.match(line) or _PROM_SAMPLE.match(line), line


def test_prometheus_text_sanitizes_names_and_prefixes():
    text = prometheus_text(_build_registry(), prefix="spt")
    assert "spt_search_nodes_total 25" in text
    assert "spt_fuel_left 12.5" in text
    assert "spt_phase_ms_sum" in text


def test_prometheus_histogram_buckets_are_cumulative_and_closed():
    text = prometheus_text(_build_registry())
    buckets = re.findall(
        r'repro_phase_ms_bucket\{le="([^"]+)"\} (\d+)', text
    )
    counts = [int(count) for _, count in buckets]
    assert counts == sorted(counts)
    assert buckets[-1][0] == "+Inf"
    assert counts[-1] == 4
    assert "repro_phase_ms_count 4" in text


def test_prometheus_accepts_telemetry_and_snapshot_inputs():
    telemetry, clock = make_telemetry()
    with telemetry.span("phase"):
        clock.advance(0.01)
    from_telemetry = prometheus_text(telemetry)
    registry = MetricsRegistry()
    registry.merge_telemetry(telemetry)
    assert from_telemetry == prometheus_text(registry.snapshot())


def test_metrics_json_is_canonical_and_round_trips():
    registry = _build_registry()
    first = metrics_json(registry)
    second = metrics_json(registry)
    assert first == second
    assert first.endswith("\n")
    document = json.loads(first)
    assert document["schema"] == MetricsRegistry.SCHEMA
    assert document["histograms"]["phase ms"]["count"] == 4
    # A snapshot that crossed a wire boundary exports identically.
    assert metrics_json(document) == first


def test_null_telemetry_metric_paths_are_inert():
    from repro.obs import NULL_TELEMETRY

    NULL_TELEMETRY.observe("anything", 1.0)
    with NULL_TELEMETRY.time("anything"):
        pass
    assert NULL_TELEMETRY.histograms == {}
