"""End-to-end telemetry through compile_spt, and decision provenance."""

import json

import pytest

from repro.core.config import best_config
from repro.core.pipeline import Workload, compile_spt
from repro.core.transform import TransformError
from repro.frontend import compile_minic
from repro.obs import ChromeTraceSink, JsonlSink, Telemetry
from repro.report import explain_text

PROGRAM = """
global int data[512];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = (i * 37) & 511;
        data[x] = data[x] + 1;
        s += x & 7;
    }
    int t = 0;
    for (int j = 0; j < 4; j++) {
        t += j;
    }
    return s + t;
}
"""

PHASES = {"unroll", "ssa", "profile", "pass1", "selection", "transform"}


def compile_with_telemetry(sinks=(), detail=False):
    module = compile_minic(PROGRAM, name="prog")
    config = best_config()
    telemetry = Telemetry(sinks=sinks, detail=detail)
    result = compile_spt(
        module, config, Workload(entry="main", args=(200,)), telemetry=telemetry
    )
    telemetry.close()
    return result, config, telemetry


def test_pipeline_emits_phase_spans_and_counters():
    result, _, telemetry = compile_with_telemetry()
    names = {span.name for span in telemetry.spans}
    assert PHASES <= names
    # One analyze_loop span per candidate per pass it was analyzed in.
    analyze = telemetry.spans_named("analyze_loop")
    assert len(analyze) >= len(result.candidates)
    assert telemetry.counters["pipeline.loops_analyzed"] == len(analyze)
    assert telemetry.counters["interp.instructions"] > 0
    assert telemetry.counters["selection.candidates"] == len(result.candidates)
    assert telemetry.counters["selection.selected"] == len(result.selected)


def test_pipeline_detail_mode_counts_tracer_events():
    _, _, telemetry = compile_with_telemetry(detail=True)
    assert telemetry.counters["interp.tracer_events"] > 0
    hooks = [
        name for name in telemetry.counters
        if name.startswith("interp.tracer_events.")
    ]
    assert hooks
    assert sum(telemetry.counters[h] for h in hooks) == (
        telemetry.counters["interp.tracer_events"]
    )


def test_pipeline_trace_covers_every_phase(tmp_path):
    path = tmp_path / "trace.json"
    compile_with_telemetry(sinks=[ChromeTraceSink(str(path))])
    document = json.loads(path.read_text())
    complete = {
        e["name"] for e in document["traceEvents"] if e["ph"] == "X"
    }
    assert PHASES <= complete


def test_pipeline_jsonl_log(tmp_path):
    path = tmp_path / "run.jsonl"
    compile_with_telemetry(sinks=[JsonlSink(str(path))])
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert {"span", "counter"} <= {r["type"] for r in records}


def test_rejected_candidates_carry_rejection_reasons():
    result, config, _ = compile_with_telemetry()
    rejected = [c for c in result.candidates if not c.selected]
    assert rejected
    reasoned = [c for c in rejected if c.rejection is not None]
    assert reasoned, "at least one rejection must carry provenance"
    for candidate in reasoned:
        reason = candidate.rejection
        assert reason.criterion
        assert reason.detail or reason.measured is not None
        payload = reason.to_dict()
        assert payload["criterion"] == reason.criterion
    # The tiny second loop fails the body-size criterion with numbers.
    small = next(
        c for c in rejected if c.rejection.criterion == "min_body_size"
    )
    assert small.rejection.measured is not None
    assert small.rejection.threshold == config.min_body_size
    rendered = str(small.rejection)
    assert "min_body_size" in rendered and "vs threshold" in rendered


def test_to_dict_includes_rejection_and_region_splits():
    result, _, _ = compile_with_telemetry()
    payload = result.to_dict()
    assert "region_splits" in payload
    assert isinstance(payload["region_splits"], list)
    rejections = [
        c["rejection"] for c in payload["candidates"]
        if c.get("rejection") is not None
    ]
    assert rejections
    assert {"criterion", "measured", "threshold", "detail"} <= set(rejections[0])
    json.dumps(payload)  # stays serializable


def test_to_dict_records_transform_error(monkeypatch):
    import repro.core.pipeline as pipeline_mod

    def explode(*args, **kwargs):
        raise TransformError("injected failure")

    monkeypatch.setattr(pipeline_mod, "transform_loop", explode)
    result, _, _ = compile_with_telemetry()
    entries = [
        c for c in result.to_dict()["candidates"]
        if c.get("transform_error") is not None
    ]
    assert entries
    assert entries[0]["transform_error"] == "injected failure"


def test_pass2_transform_error_keeps_category(monkeypatch):
    """A pass-2 TransformError must not demote the candidate's category;
    the failure is recorded on transform_error instead."""
    import repro.core.pipeline as pipeline_mod

    def explode(*args, **kwargs):
        raise TransformError("injected failure")

    monkeypatch.setattr(pipeline_mod, "transform_loop", explode)
    result, _, telemetry = compile_with_telemetry()
    assert result.selected == []
    failed = [c for c in result.candidates if c.transform_error is not None]
    assert failed
    for candidate in failed:
        assert candidate.transform_error == "injected failure"
        assert candidate.rejection.criterion == "transform_error"
        assert candidate.category != "irregular"
        assert not candidate.selected
    # The histogram still reflects the selection decision.
    assert result.category_histogram().get("irregular", 0) == 0
    assert telemetry.counters["transform.failed"] == len(failed)


def test_explain_text_names_failed_criterion():
    result, config, _ = compile_with_telemetry()
    report = explain_text(result, config)
    assert "loop candidates" in report
    assert "min_body_size" in report
    assert "vs threshold" in report
    assert "verdict" in report


def test_explain_text_loop_filter():
    result, config, _ = compile_with_telemetry()
    key = result.candidates[0].key
    report = explain_text(result, config, loop=key)
    assert f"loop {key}" in report
    missing = explain_text(result, config, loop="zz:nope")
    assert "no loop candidate" in missing


def test_null_telemetry_default_changes_nothing():
    """compile_spt without telemetry produces the identical result."""
    module = compile_minic(PROGRAM, name="prog")
    config = best_config()
    bare = compile_spt(module, config, Workload(entry="main", args=(200,)))
    observed, _, _ = compile_with_telemetry()
    assert bare.to_dict() == observed.to_dict()
