"""Telemetry core: spans, counters, gauges, events, null object."""

from repro.obs import NULL_TELEMETRY, NullTelemetry, Telemetry


class FakeClock:
    """Deterministic clock; advance() moves time forward."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_telemetry(**kwargs):
    clock = FakeClock()
    return Telemetry(clock=clock, **kwargs), clock


def test_span_records_duration_and_name():
    telemetry, clock = make_telemetry()
    with telemetry.span("phase", kind="test"):
        clock.advance(0.25)
    (span,) = telemetry.spans
    assert span.name == "phase"
    assert span.duration == 0.25
    assert span.attrs == {"kind": "test"}
    assert span.depth == 0
    assert span.parent is None


def test_spans_nest_with_parent_links():
    telemetry, clock = make_telemetry()
    with telemetry.span("outer") as outer:
        clock.advance(0.1)
        with telemetry.span("inner") as inner:
            clock.advance(0.1)
        with telemetry.span("inner") as inner2:
            clock.advance(0.1)
    assert inner.parent == outer.span_id
    assert inner2.parent == outer.span_id
    assert inner.depth == 1 and outer.depth == 0
    assert inner.span_id != inner2.span_id
    # Children close before the parent.
    assert [s.name for s in telemetry.spans] == ["inner", "inner", "outer"]
    # The parent's interval covers each child's.
    outer_span = telemetry.spans_named("outer")[0]
    for child in telemetry.spans_named("inner"):
        assert outer_span.start <= child.start
        assert child.end <= outer_span.end


def test_counters_accumulate_and_gauges_overwrite():
    telemetry, _ = make_telemetry()
    telemetry.count("hits")
    telemetry.count("hits", 4)
    telemetry.gauge("fuel", 100)
    telemetry.gauge("fuel", 7)
    assert telemetry.counters["hits"] == 5
    assert telemetry.gauges["fuel"] == 7


def test_event_is_associated_with_open_span():
    telemetry, _ = make_telemetry()
    with telemetry.span("work") as span:
        telemetry.event("tick", n=1)
    telemetry.event("tock")
    tick, tock = telemetry.events
    assert tick.span_id == span.span_id
    assert tick.attrs == {"n": 1}
    assert tock.span_id is None


def test_close_finishes_open_spans_and_is_idempotent():
    closes = []

    class Probe:
        def on_span(self, span):
            pass

        def on_event(self, event):
            pass

        def on_close(self, telemetry):
            closes.append(telemetry)

    clock = FakeClock()
    telemetry = Telemetry(sinks=[Probe()], clock=clock)
    telemetry.span("left-open")  # never exited
    telemetry.close()
    telemetry.close()
    assert closes == [telemetry]
    assert telemetry.spans_named("left-open")[0].end is not None


def test_context_manager_closes():
    clock = FakeClock()
    with Telemetry(clock=clock) as telemetry:
        with telemetry.span("p"):
            clock.advance(1.0)
    assert telemetry.phase_durations() == {"p": 1.0}


def test_sinks_see_spans_and_events_in_order():
    seen = []

    class Probe:
        def on_span(self, span):
            seen.append(("span", span.name))

        def on_event(self, event):
            seen.append(("event", event.name))

        def on_close(self, telemetry):
            seen.append(("close", None))

    telemetry = Telemetry(sinks=[Probe()], clock=FakeClock())
    with telemetry.span("a"):
        telemetry.event("e")
    telemetry.close()
    assert seen == [("event", "e"), ("span", "a"), ("close", None)]


def test_null_telemetry_is_inert():
    assert NULL_TELEMETRY.enabled is False
    assert NULL_TELEMETRY.detail is False
    with NULL_TELEMETRY.span("anything", x=1) as span:
        assert span is None
    NULL_TELEMETRY.count("c")
    NULL_TELEMETRY.gauge("g", 1)
    NULL_TELEMETRY.event("e", y=2)
    NULL_TELEMETRY.close()
    assert NULL_TELEMETRY.counters == {}
    assert NULL_TELEMETRY.spans == ()
    assert isinstance(NULL_TELEMETRY, NullTelemetry)


def test_phase_durations_sums_spans_of_same_name():
    telemetry, clock = make_telemetry()
    for _ in range(3):
        with telemetry.span("loop"):
            clock.advance(0.5)
    assert telemetry.phase_durations() == {"loop": 1.5}
