"""Sink round-trips: JSONL and Chrome traces must parse as JSON and
preserve span nesting."""

import io
import json

from repro.obs import (
    ChromeTraceSink,
    JsonlSink,
    SummarySink,
    Telemetry,
    summary_text,
)

from tests.obs.test_telemetry import FakeClock


def run_workload(telemetry, clock):
    """A small two-level workload touching every record type."""
    with telemetry.span("compile", program="p.c"):
        with telemetry.span("profile"):
            clock.advance(0.010)
            telemetry.count("interp.instructions", 1234)
        with telemetry.span("pass1"):
            clock.advance(0.020)
            telemetry.event("transform.rejected", loop="main:h", error="call")
        clock.advance(0.005)
    telemetry.gauge("interp.fuel_remaining", 99)
    telemetry.close()


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    clock = FakeClock()
    telemetry = Telemetry(sinks=[JsonlSink(str(path))], clock=clock)
    run_workload(telemetry, clock)

    records = [json.loads(line) for line in path.read_text().splitlines()]
    by_type = {}
    for record in records:
        by_type.setdefault(record["type"], []).append(record)

    assert {r["name"] for r in by_type["span"]} == {"compile", "profile", "pass1"}
    assert by_type["event"][0]["name"] == "transform.rejected"
    assert by_type["event"][0]["attrs"]["error"] == "call"
    assert {r["name"]: r["value"] for r in by_type["counter"]} == {
        "interp.instructions": 1234
    }
    assert by_type["gauge"][0] == {
        "type": "gauge", "name": "interp.fuel_remaining", "value": 99,
    }
    # Nesting is well-formed: each child names its parent's span_id and
    # lies inside the parent's interval.
    spans = {r["span_id"]: r for r in by_type["span"]}
    for record in by_type["span"]:
        parent = record["parent"]
        if parent is None:
            continue
        assert parent in spans
        outer = spans[parent]
        assert outer["start"] <= record["start"]
        assert (
            record["start"] + record["duration"]
            <= outer["start"] + outer["duration"]
        )
        assert record["depth"] == outer["depth"] + 1


def test_jsonl_accepts_stream():
    stream = io.StringIO()
    clock = FakeClock()
    telemetry = Telemetry(sinks=[JsonlSink(stream)], clock=clock)
    run_workload(telemetry, clock)
    lines = stream.getvalue().splitlines()
    assert len(lines) >= 5
    for line in lines:
        json.loads(line)


def test_chrome_trace_round_trip(tmp_path):
    path = tmp_path / "trace.json"
    clock = FakeClock()
    telemetry = Telemetry(sinks=[ChromeTraceSink(str(path))], clock=clock)
    run_workload(telemetry, clock)

    document = json.loads(path.read_text())
    events = document["traceEvents"]
    assert document["otherData"]["producer"] == "repro.obs"

    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    counters = [e for e in events if e["ph"] == "C"]
    assert {e["name"] for e in complete} == {"compile", "profile", "pass1"}
    assert instants[0]["name"] == "transform.rejected"
    assert counters and counters[0]["args"]["value"] == 1234

    # Sorted by timestamp, and all required keys present.
    timestamps = [e["ts"] for e in events]
    assert timestamps == sorted(timestamps)
    for e in events:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(e)

    # Same-thread complete events must nest: compile covers both phases.
    spans = {e["name"]: e for e in complete}
    outer = spans["compile"]
    for name in ("profile", "pass1"):
        inner = spans[name]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    assert spans["compile"]["args"] == {"program": "p.c"}


def test_summary_sink_and_text():
    stream = io.StringIO()
    clock = FakeClock()
    telemetry = Telemetry(sinks=[SummarySink(stream)], clock=clock)
    run_workload(telemetry, clock)
    out = stream.getvalue()
    assert "telemetry: spans" in out
    assert "compile" in out
    assert "interp.instructions" in out
    assert "1 events recorded" in out
    assert summary_text(telemetry) + "\n" == out


def test_summary_text_empty():
    telemetry = Telemetry(clock=FakeClock())
    telemetry.close()
    assert summary_text(telemetry) == "telemetry: nothing recorded"


def test_check_trace_script(tmp_path):
    """scripts/check_trace.py accepts a real trace and rejects a broken one."""
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "check_trace",
        os.path.join(
            os.path.dirname(__file__), "..", "..", "scripts", "check_trace.py"
        ),
    )
    check_trace = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_trace)

    path = tmp_path / "trace.json"
    clock = FakeClock()
    telemetry = Telemetry(sinks=[ChromeTraceSink(str(path))], clock=clock)
    run_workload(telemetry, clock)
    problems = check_trace.check_trace(
        str(path), ["compile", "profile", "pass1"]
    )
    assert problems == []
    assert check_trace.check_trace(str(path), ["unroll"]) != []

    broken = tmp_path / "broken.json"
    broken.write_text(json.dumps({"traceEvents": [{"name": "x", "ph": "X"}]}))
    assert check_trace.check_trace(str(broken), []) != []

    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"traceEvents": []}))
    assert check_trace.check_trace(str(empty), []) == ["traceEvents is empty"]
