"""The persistent run ledger: append/load round-trips, concurrent
writers, corruption tolerance, and run references."""

import json
import multiprocessing as mp
import os

import pytest

from repro.obs import LEDGER_SCHEMA, Ledger, host_token, make_record
from repro.obs.telemetry import Telemetry


def _record(name="golden", kind="compile", **kwargs):
    return make_record(kind, {"name": name}, "cfg-fingerprint", **kwargs)


def test_append_load_round_trip(tmp_path):
    ledger = Ledger(tmp_path / "ledger")
    record = _record(wall_s=0.25, cycles=1234)
    run_id = ledger.append(record)
    assert run_id == record["run_id"]
    loaded = ledger.load()
    assert len(loaded) == 1
    assert loaded[0] == record
    assert loaded[0]["schema"] == LEDGER_SCHEMA
    assert loaded[0]["host"] == host_token()


def test_make_record_embeds_telemetry_aggregates():
    telemetry = Telemetry()
    with telemetry.span("search"):
        with telemetry.span("transform"):
            pass
    telemetry.count("search.nodes", 7)
    telemetry.gauge("fuel", 3.0)
    record = _record(telemetry=telemetry)
    assert set(record["phase_self_ms"]) == {"search", "transform"}
    assert all(ms >= 0.0 for ms in record["phase_self_ms"].values())
    assert record["counters"] == {"search.nodes": 7}
    assert record["gauges"] == {"fuel": 3.0}


def test_append_rejects_foreign_schema_and_missing_run_id(tmp_path):
    ledger = Ledger(tmp_path)
    with pytest.raises(ValueError):
        ledger.append({"schema": LEDGER_SCHEMA})
    bad = _record()
    bad["schema"] = "someone-elses/9"
    with pytest.raises(ValueError):
        ledger.append(bad)
    assert ledger.load() == []


def test_load_skips_corrupt_and_foreign_lines(tmp_path):
    ledger = Ledger(tmp_path)
    good = _record()
    ledger.append(good)
    with open(ledger.path, "a") as handle:
        handle.write("{truncated json\n")
        handle.write('"not an object"\n')
        handle.write(json.dumps({"schema": "other-tool/1", "x": 1}) + "\n")
        handle.write("\n")
    later = _record(name="second")
    ledger.append(later)
    loaded = ledger.load()
    assert [r["run_id"] for r in loaded] == [good["run_id"], later["run_id"]]


def test_ledger_accepts_direct_jsonl_file_path(tmp_path):
    file_path = tmp_path / "baseline.jsonl"
    writer = Ledger(file_path)
    writer.append(_record())
    assert file_path.exists()
    assert len(Ledger(file_path).load()) == 1


def test_env_var_overrides_default_directory(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "from-env"))
    ledger = Ledger()
    ledger.append(_record())
    assert ledger.path == tmp_path / "from-env" / "runs.jsonl"
    assert len(ledger.load()) == 1


def test_runs_filters_by_kind_workload_fingerprint(tmp_path):
    ledger = Ledger(tmp_path)
    ledger.append(_record(name="a", kind="compile"))
    ledger.append(_record(name="a", kind="simulate"))
    ledger.append(_record(name="b", kind="compile"))
    assert len(ledger.runs(kind="compile")) == 2
    assert len(ledger.runs(workload="a")) == 2
    assert len(ledger.runs(kind="simulate", workload="b")) == 0
    assert len(ledger.runs(fingerprint="cfg-fingerprint")) == 3
    assert len(ledger.runs(host=host_token())) == 3


def test_resolve_by_position_and_prefix(tmp_path):
    ledger = Ledger(tmp_path)
    first = _record(name="first")
    second = _record(name="second")
    ledger.append(first)
    ledger.append(second)
    assert ledger.resolve("@-1")["run_id"] == second["run_id"]
    assert ledger.resolve("@0")["run_id"] == first["run_id"]
    assert ledger.resolve(first["run_id"][:6])["run_id"] == first["run_id"]
    with pytest.raises(LookupError):
        ledger.resolve("@99")
    with pytest.raises(LookupError):
        ledger.resolve("zzzzzz")
    with pytest.raises(LookupError):
        Ledger(tmp_path / "empty").resolve("@-1")


def _hammer(directory, writer_id, appends):
    ledger = Ledger(directory)
    for sequence in range(appends):
        record = make_record(
            "compile",
            {"name": f"w{writer_id}"},
            "cfg-fingerprint",
            extra={"writer": writer_id, "seq": sequence},
        )
        ledger.append(record)


def test_concurrent_writers_interleave_whole_lines(tmp_path):
    """Parallel appenders (CI shards, batch workers) must never tear
    each other's lines: every record survives, parseable, in per-writer
    order."""
    writers, appends = 4, 12
    directory = str(tmp_path / "ledger")
    ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
    procs = [
        ctx.Process(target=_hammer, args=(directory, w, appends))
        for w in range(writers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    # Every raw line parses -- no torn writes.
    with open(Ledger(directory).path) as handle:
        lines = [line for line in handle if line.strip()]
    assert len(lines) == writers * appends
    records = [json.loads(line) for line in lines]

    # All records present, and each writer's stream is in order.
    for writer_id in range(writers):
        seqs = [
            r["extra"]["seq"]
            for r in records
            if r["extra"]["writer"] == writer_id
        ]
        assert seqs == sorted(seqs)
        assert len(seqs) == appends
