"""Software value prediction tests (paper §7.2, Figure 13)."""

import copy
import math

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.costgraph import build_cost_graph
from repro.core.partition import find_optimal_partition
from repro.core.svp import apply_svp, critical_candidates
from repro.core.violation import find_violation_candidates
from repro.ir import parse_module
from repro.profiling import ValueProfile, run_module
from repro.ssa import build_ssa

# The paper's Figure 13 shape: x = bar(x), where bar adds 2.
FIGURE13 = """\
module t
func bar(x) {
entry:
  y = add x, 2
  ret y
}
func main(n) {
entry:
  x = copy 0
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  f = mul x, 3
  call sink(f)
  x = call bar(x)
  i = add i, 1
  jump head
exit:
  ret x
}
"""


def _prepared():
    module = parse_module(FIGURE13)
    baseline = copy.deepcopy(module)
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    graph = build_dep_graph(module, func, loop)
    return module, baseline, func, loop, graph


def _x_vc(graph):
    candidates = find_violation_candidates(graph)
    return next(
        vc
        for vc in candidates
        if vc.instr.dest is not None
        and vc.instr.dest.base == "x"
        and vc.instr.opcode == "call"
    )


SINK = {"sink": lambda machine, v: None}


def test_critical_candidate_is_the_call():
    module, _, func, loop, graph = _prepared()
    candidates = find_violation_candidates(graph)
    partition = find_optimal_partition(graph, SptConfig())
    cost_graph = build_cost_graph(graph, partition.candidates)
    ranked = critical_candidates(partition, cost_graph)
    assert ranked, "expected at least one critical candidate"
    top_vc, contribution = ranked[0]
    assert contribution > 0
    # The unmovable x = bar(x) call dominates the cost.
    bases = {vc.instr.dest.base for vc, _ in ranked if vc.instr.dest}
    assert "x" in bases


def test_svp_preserves_semantics():
    module, baseline, func, loop, graph = _prepared()
    vc = _x_vc(graph)
    profile = ValueProfile([vc.instr])
    run_module(module, args=[30], tracers=[profile], intrinsics=SINK)
    pattern = profile.pattern_for(vc.instr)
    assert pattern.kind == "stride"
    assert pattern.stride == 2

    info = apply_svp(module, func, loop, vc, pattern)
    assert info is not None
    for n in (0, 1, 2, 5, 50):
        got, _ = run_module(module, args=[n], intrinsics=SINK)
        want, _ = run_module(baseline, args=[n], intrinsics=SINK)
        assert got == want, n


def test_svp_lowers_misspeculation_cost():
    """SVP + dependence profiling together (the paper's "best"
    compilation) price the Figure 13 loop far below the static
    analysis: the call's memory conservatism is discharged by the
    profile, and the carried value by the prediction."""
    from repro.profiling import DependenceProfile

    module, baseline, func, loop, graph = _prepared()
    dep = DependenceProfile(module)
    run_module(module, args=[30], tracers=[dep], intrinsics=SINK)
    view = dep.view("main", loop)
    graph_prof = build_dep_graph(module, func, loop, dep_profile=view)
    before = find_optimal_partition(graph_prof, SptConfig())
    assert before.cost > 0  # x = bar(x) still serializes the loop

    vc = _x_vc(graph)
    profile = ValueProfile([vc.instr])
    run_module(module, args=[30], tracers=[profile], intrinsics=SINK)
    pattern = profile.pattern_for(vc.instr)
    info = apply_svp(module, func, loop, vc, pattern)
    assert info is not None

    nest = LoopNest.build(func)
    loop2 = next(l for l in nest.loops if l.header == loop.header)
    view2 = dep.view("main", loop2)
    graph2 = build_dep_graph(module, func, loop2, dep_profile=view2)
    after = find_optimal_partition(graph2, SptConfig())
    assert after.cost < before.cost


def test_svp_rejects_unpredictable_pattern():
    from repro.profiling.value_profile import ValuePattern

    module, _, func, loop, graph = _prepared()
    vc = _x_vc(graph)
    pattern = ValuePattern("unpredictable", None, 0.0, 100)
    assert apply_svp(module, func, loop, vc, pattern) is None


def test_svp_check_block_gets_branch_hint():
    module, _, func, loop, graph = _prepared()
    vc = _x_vc(graph)
    profile = ValueProfile([vc.instr])
    run_module(module, args=[40], tracers=[profile], intrinsics=SINK)
    info = apply_svp(module, func, loop, vc, profile.pattern_for(vc.instr))
    hint = func.block(info.check_label).annotations.get("branch_hint")
    assert hint is not None
    assert max(hint.values()) > 0.9  # predicted-correct edge dominates
