"""Property tests: the incremental misspeculation-cost evaluator must
be bitwise identical to the full recompute (`misspeculation_cost`) on
every query, for arbitrary cost graphs and arbitrary prefork-set walks
(the access pattern the branch-and-bound search produces)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CostEvaluator,
    CostGraph,
    IncrementalCostEvaluator,
    make_cost_evaluator,
    misspeculation_cost,
    reexecution_probabilities,
)
from repro.core.config import best_config


def _random_cost_graph(rng, n_vcs, n_ops):
    cg = CostGraph()
    vcs = [f"vc{i}" for i in range(n_vcs)]
    ops = [f"op{i}" for i in range(n_ops)]
    for vc in vcs:
        cg.add_pseudo(vc, rng.random())
    for op in ops:
        cg.add_node(op, rng.uniform(0.5, 4.0))
    for vc in vcs:
        for op in rng.sample(ops, k=min(rng.randint(1, 4), n_ops)):
            cg.add_edge_from_pseudo(vc, op, rng.random())
    for i in range(n_ops):
        succs = range(i + 1, n_ops)
        for j in rng.sample(succs, k=min(rng.randint(0, 3), len(succs))):
            cg.add_edge(ops[i], ops[j], rng.random())
    return cg, vcs


def _random_walk(rng, vcs, steps):
    """Yield a sequence of prefork sets mimicking a search: mostly
    single-VC flips from the previous set, occasionally a jump."""
    prefork = set()
    for _ in range(steps):
        if rng.random() < 0.15:
            prefork = set(rng.sample(vcs, k=rng.randint(0, len(vcs))))
        else:
            vc = rng.choice(vcs)
            if vc in prefork:
                prefork.discard(vc)
            else:
                prefork.add(vc)
        yield frozenset(prefork)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_incremental_matches_full(seed):
    rng = random.Random(seed)
    cg, vcs = _random_cost_graph(
        rng, n_vcs=rng.randint(1, 8), n_ops=rng.randint(2, 40)
    )
    inc = IncrementalCostEvaluator(cg)
    for prefork in _random_walk(rng, vcs, steps=40):
        expected = misspeculation_cost(cg, prefork)
        assert inc.cost(prefork) == expected  # bitwise, not approx
        assert inc.cost(prefork) == expected  # cached re-query stays exact


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_incremental_probabilities_match(seed):
    rng = random.Random(seed)
    cg, vcs = _random_cost_graph(rng, n_vcs=5, n_ops=25)
    inc = IncrementalCostEvaluator(cg)
    for prefork in _random_walk(rng, vcs, steps=15):
        expected = reexecution_probabilities(cg, prefork)
        assert inc.probabilities(prefork) == expected


def test_incremental_visits_fewer_nodes():
    """On a search-like walk the incremental evaluator touches far
    fewer cost-graph nodes than full recomputation."""
    rng = random.Random(7)
    cg, vcs = _random_cost_graph(rng, n_vcs=10, n_ops=200)
    full = CostEvaluator(cg)
    inc = IncrementalCostEvaluator(cg)
    for prefork in _random_walk(rng, vcs, steps=200):
        assert inc.cost(prefork) == full.cost(prefork)
    assert inc.evaluations == full.evaluations
    assert inc.node_visits * 2 < full.node_visits


def test_state_eviction_preserves_correctness():
    """Even with a pathologically small state cache the results stay
    exact -- eviction only costs recomputation."""
    rng = random.Random(11)
    cg, vcs = _random_cost_graph(rng, n_vcs=6, n_ops=30)
    inc = IncrementalCostEvaluator(cg, max_states=2)
    for prefork in _random_walk(rng, vcs, steps=60):
        assert inc.cost(prefork) == misspeculation_cost(cg, prefork)


def test_make_cost_evaluator_respects_config():
    cg, _ = _random_cost_graph(random.Random(3), n_vcs=3, n_ops=10)
    cfg = best_config()
    assert isinstance(make_cost_evaluator(cg, cfg), IncrementalCostEvaluator)
    slow = make_cost_evaluator(cg, cfg.with_overrides(incremental_cost=False))
    assert isinstance(slow, CostEvaluator)
    assert not isinstance(slow, IncrementalCostEvaluator)
    assert isinstance(make_cost_evaluator(cg), IncrementalCostEvaluator)


def test_cache_bound_is_respected():
    cg, vcs = _random_cost_graph(random.Random(5), n_vcs=8, n_ops=20)
    ev = CostEvaluator(cg, max_size=4)
    for prefork in _random_walk(random.Random(6), vcs, steps=50):
        ev.cost(prefork)
    assert len(ev._cache) <= 4
    assert 0.0 <= ev.hit_rate <= 1.0
