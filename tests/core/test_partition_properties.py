"""Property-based partition-search tests: on randomly generated loops
the branch-and-bound must match the brute-force optimum under any size
threshold, and its prunings must never change the answer."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.partition import brute_force_partition, find_optimal_partition
from repro.ir import parse_module
from repro.ssa import build_ssa

#: Accumulator-statement templates; `{v}` is the variable, `{w}` a peer.
_UPDATES = [
    "  {v} = add {v}, {k}",
    "  {v} = add {v}, {w}",
    "  {v} = mul {v}, 3",
    "  t{t} = mul {w}, {k}\n  {v} = add {v}, t{t}",
    "  t{t} = add {w}, {k}\n  {v} = xor {v}, t{t}",
]


@st.composite
def random_loop(draw):
    n_vars = draw(st.integers(2, 5))
    names = [f"v{i}" for i in range(n_vars)]
    lines = []
    temp = 0
    for index, v in enumerate(names):
        template = draw(st.sampled_from(_UPDATES))
        w = draw(st.sampled_from(names[: index + 1]))
        lines.append(
            template.format(v=v, w=w, k=draw(st.integers(1, 9)), t=temp)
        )
        temp += 1
    decls = "\n".join(f"  {v} = copy 0" for v in names)
    body = "\n".join(lines)
    source = f"""\
module t
func main(n) {{
entry:
{decls}
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
{body}
  i = add i, 1
  jump head
exit:
  ret v0
}}
"""
    return source


@settings(max_examples=30, deadline=None)
@given(random_loop(), st.sampled_from([0.2, 0.4, 0.6, 0.9]))
def test_search_matches_brute_force(source, fraction):
    module = parse_module(source)
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    graph = build_dep_graph(module, func, nest.loops[0])
    config = SptConfig(prefork_fraction=fraction)

    optimal = find_optimal_partition(graph, config)
    brute = brute_force_partition(graph, config)
    assert math.isclose(optimal.cost, brute.cost, abs_tol=1e-9), source


@settings(max_examples=30, deadline=None)
@given(random_loop())
def test_pruning_never_changes_the_optimum(source):
    module = parse_module(source)
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    graph = build_dep_graph(module, func, nest.loops[0])
    config = SptConfig(prefork_fraction=0.7)

    pruned = find_optimal_partition(graph, config, use_pruning=True)
    unpruned = find_optimal_partition(graph, config, use_pruning=False)
    assert math.isclose(pruned.cost, unpruned.cost, abs_tol=1e-9)
    assert pruned.search_nodes <= unpruned.search_nodes


@settings(max_examples=20, deadline=None)
@given(random_loop())
def test_threshold_monotonicity(source):
    """A looser size threshold can only lower (or keep) the optimum."""
    module = parse_module(source)
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    graph = build_dep_graph(module, func, nest.loops[0])

    costs = []
    for fraction in (0.1, 0.4, 0.9):
        result = find_optimal_partition(graph, SptConfig(prefork_fraction=fraction))
        costs.append(result.cost)
    assert costs[0] >= costs[1] - 1e-9
    assert costs[1] >= costs[2] - 1e-9
