"""SPT loop transformation tests (paper §6.2, Figures 2/10/11/12).

The key property: a transformed loop run *sequentially* (SPT markers are
no-ops in the plain interpreter) computes exactly what the original did.
"""

import copy

import pytest

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.partition import find_optimal_partition
from repro.core.transform import TransformError, check_transformable, transform_loop
from repro.ir import format_function, parse_module
from repro.profiling import run_module
from repro.ssa import build_ssa

CONFIG = SptConfig(prefork_fraction=0.9)


def _transform(source, func_name="main", loop_header=None, config=CONFIG):
    module = parse_module(source)
    baseline = copy.deepcopy(module)
    func = module.function(func_name)
    build_ssa(func)
    nest = LoopNest.build(func)
    if loop_header is None:
        loop = nest.loops[0]
    else:
        loop = next(l for l in nest.loops if l.header == loop_header)
    graph = build_dep_graph(module, func, loop)
    partition = find_optimal_partition(graph, config)
    info = transform_loop(module, func, loop, partition, graph)
    return module, baseline, func, info, partition


def _results_match(module, baseline, args, func_name="main", intrinsics=None):
    got, machine_new = run_module(
        module, func_name=func_name, args=args, intrinsics=intrinsics or {}
    )
    want, machine_old = run_module(
        baseline, func_name=func_name, args=args, intrinsics=intrinsics or {}
    )
    assert got == want, f"result mismatch: {got} != {want}"
    assert machine_new.memory == machine_old.memory, "memory state diverged"


FIGURE2 = """\
module t
func main(n) {
  local error[4096]
  local p[64]
entry:
  pe = addr error
  pp = addr p
  i = copy 0
  cost = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  cost0 = copy 0
  j = copy 0
  row = mul i, 64
  jump inner_head
inner_head:
  c1 = lt j, i
  br c1, inner_body, after
inner_body:
  idx = add row, j
  e = load pe, idx !error
  q = load pp, j !p
  d = sub e, q
  a = abs d
  cost0 = add cost0, a
  j = add j, 1
  jump inner_head
after:
  cost = add cost, cost0
  i = add i, 1
  jump head
exit:
  ret cost
}
"""


def test_figure2_loop_transforms_and_matches():
    """The paper's Figure 2 loop: the induction update of i moves into
    the pre-fork region."""
    module, baseline, func, info, partition = _transform(
        FIGURE2, loop_header="head"
    )
    assert info.moved_count >= 1
    moved_bases = {
        instr.dest.base
        for instr in partition.prefork_stmts
        if instr.dest is not None and instr.opcode == "binop"
    }
    assert "i" in moved_bases
    _results_match(module, baseline, [20])


def test_figure2_fork_and_kill_are_placed():
    module, _, func, info, _ = _transform(FIGURE2, loop_header="head")
    text = format_function(func)
    assert "spt_fork" in text
    assert "spt_kill" in text
    fork_block = func.block(info.fork_label)
    assert fork_block.instrs[0].opcode == "spt_fork"


SIMPLE = """\
module t
func main(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  x = mul i, 3
  s = add s, x
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def test_simple_loop_semantics_preserved():
    module, baseline, _, info, _ = _transform(SIMPLE)
    for n in (0, 1, 2, 7, 100):
        _results_match(module, baseline, [n])


def test_empty_partition_still_forms_spt_loop():
    """With a zero-size pre-fork threshold nothing can move, but the
    fork/kill skeleton is still produced."""
    module, baseline, func, info, partition = _transform(
        SIMPLE, config=SptConfig(prefork_fraction=0.0)
    )
    assert info.moved_count == 0
    assert partition.prefork_vcs == []
    _results_match(module, baseline, [10])


CONDITIONAL_MOVE = """\
module t
func main(n) {
entry:
  i = copy 0
  s = copy 0
  x = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  m = mod i, 3
  z = eq m, 0
  br z, then, latch
then:
  x = add x, 5
  jump latch
latch:
  y = add x, i
  s = add s, y
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def test_partial_conditional_statement_moves_with_branch():
    """Figure 12: moving a statement guarded by ``if`` replicates the
    branch into the pre-fork region."""
    module, baseline, func, info, partition = _transform(
        CONDITIONAL_MOVE, config=SptConfig(prefork_fraction=0.95)
    )
    moved_bases = {
        instr.dest.base
        for instr in partition.prefork_stmts
        if instr.dest is not None
    }
    if "x" in moved_bases:
        assert info.replicated_branches >= 1
    for n in (0, 1, 5, 30):
        _results_match(module, baseline, [n])


def test_lifetime_overlap_is_repaired():
    """Figures 10/11: moving the carried update above a use of the old
    value requires SSA repair (the paper's temporary insertion)."""
    source = """\
module t
func main(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  s = add s, i
  i = add i, 1
  jump head
exit:
  ret s
}
"""
    module, baseline, func, info, partition = _transform(source)
    # i's update moved above the use of the previous i (inside s += i):
    # the transformation must keep the old value flowing to s.
    for n in (0, 1, 4, 50):
        _results_match(module, baseline, [n])


MEMORY_LOOP = """\
module t
func main(n) {
  local hist[256]
entry:
  p = addr hist
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  m = mod i, 256
  old = load p, m !hist
  new = add old, 1
  store p, m, new !hist
  i = add i, 1
  jump head
exit:
  r = load p, 0 !hist
  ret r
}
"""


def test_memory_loop_semantics_preserved():
    module, baseline, _, _, _ = _transform(MEMORY_LOOP)
    _results_match(module, baseline, [1000])


MULTI_EXIT = """\
module t
func main(n) {
entry:
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  z = eq i, 5
  br z, break_out, latch
latch:
  i = add i, 1
  jump head
break_out:
  jump exit
exit:
  ret i
}
"""


def test_mid_body_exit_is_rejected():
    module = parse_module(MULTI_EXIT)
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    with pytest.raises(TransformError):
        check_transformable(func, nest.loops[0])


def test_transformed_function_verifies_as_ssa():
    from repro.ir import verify_function

    module, _, func, _, _ = _transform(FIGURE2, loop_header="head")
    verify_function(module, func, ssa=True)
