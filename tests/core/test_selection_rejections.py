"""One test per §6.1 rejection criterion.

Each test drives the full two-pass pipeline into a specific
:class:`~repro.core.selection.RejectionReason` and asserts that the
measured value and the threshold it was held against serialize through
``CompilationResult.to_dict()`` -- the contract the observability layer
and `repro explain` rely on to reconstruct a decision from the report
alone.
"""

import json

import pytest

from repro.core.config import SptConfig
from repro.core.pipeline import Workload, compile_spt
from repro.core.transform import TransformError
from repro.frontend import compile_minic

#: Loop with genuine cross-iteration dependences (load-after-store on
#: ``data`` plus the ``s`` recurrence) -- cost and prefork are nonzero.
BASE = """
global int data[64] aliased;

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = (i * 37) & 63;
        data[x] = data[(x + 1) & 63] + s;
        s = (s + data[x]) & 65535;
    }
    return s & 1048575;
}
"""

#: Independent iterations in a two-deep nest: both levels pass every
#: per-loop criterion, so they collide on the single speculative core.
NEST = """
global int data[256] aliased;

int main(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 16; j++) {
            int x = (i * 16 + j) & 255;
            data[x] = (x * 7 + j) & 65535;
            data[(x + 128) & 255] = (x * 3) & 65535;
        }
    }
    return data[0] & 1048575;
}
"""

#: The cross-iteration work hides behind a rarely-taken guard: the
#: *static* pre-fork region needed to hoist it is large relative to the
#: small *dynamic* body size the selection criteria are measured in.
GUARDED = """
global int data[64] aliased;

int main(int n) {
    int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
    for (int i = 0; i < n; i++) {
        data[i & 63] = (i * 5) & 65535;
        if ((i & 127) == 127) {
            s0 = (s0 + data[(i + 1) & 63] * 3 + 7) & 65535;
            s1 = (s1 + s0 * 5 + data[(i + 2) & 63]) & 65535;
            s2 = (s2 + s1 * 7 + data[(i + 3) & 63]) & 65535;
            s3 = (s3 + s2 * 9 + data[(i + 4) & 63]) & 65535;
        }
    }
    return (s0 + s1 + s2 + s3) & 1048575;
}
"""

#: Mid-body exit: not transformable into SPT form.
BREAKY = """
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s = (s + i * 3) & 65535;
        if (s > 60000) { break; }
    }
    return s & 1048575;
}
"""


def _reject(source, n=40, **overrides):
    """Compile, return the to_dict() entries that carry a rejection."""
    module = compile_minic(source)
    config = SptConfig(enable_unrolling=False).with_overrides(**overrides)
    result = compile_spt(module, config, Workload(args=(n,)))
    report = result.to_dict()
    json.dumps(report)  # the whole report must be JSON-serializable
    return [e for e in report["candidates"] if "rejection" in e]


def _sole(entries, criterion):
    matching = [e for e in entries if e["rejection"]["criterion"] == criterion]
    assert matching, f"no {criterion} rejection in {entries}"
    return matching[0]["rejection"], matching[0]


def test_transformable_rejection_carries_detail():
    entry, candidate = _sole(_reject(BREAKY), "transformable")
    assert candidate["category"] == "irregular_control_flow"
    assert "exit" in entry["detail"]
    # No numeric comparison exists for this criterion.
    assert "measured" not in entry and "threshold" not in entry
    assert "transform_error" in candidate


def test_max_violation_candidates_rejection():
    entry, candidate = _sole(
        _reject(BASE, max_violation_candidates=1), "max_violation_candidates"
    )
    assert candidate["category"] == "too_many_vcs"
    assert entry["threshold"] == 1.0
    assert entry["measured"] > entry["threshold"]


def test_min_body_size_rejection():
    entry, candidate = _sole(
        _reject(BASE, min_body_size=10_000, max_body_size=20_000),
        "min_body_size",
    )
    assert candidate["category"] == "body_too_small"
    assert entry["threshold"] == 10_000.0
    assert 0 < entry["measured"] < entry["threshold"]
    assert entry["measured"] == pytest.approx(
        candidate["dynamic_body_size"], abs=0.01
    )


def test_max_body_size_rejection():
    entry, candidate = _sole(
        _reject(BASE, min_body_size=0, max_body_size=1), "max_body_size"
    )
    assert candidate["category"] == "body_too_large"
    assert entry["threshold"] == 1.0
    assert entry["measured"] > entry["threshold"]


def test_min_trip_count_rejection():
    entry, candidate = _sole(
        _reject(BASE, min_trip_count=1e6), "min_trip_count"
    )
    assert candidate["category"] == "low_trip_count"
    assert entry["threshold"] == 1e6
    assert entry["measured"] < entry["threshold"]
    assert entry["measured"] == pytest.approx(candidate["trip_count"], abs=0.01)


def test_cost_threshold_rejection():
    entry, candidate = _sole(_reject(BASE), "cost_threshold")
    assert candidate["category"] == "high_cost"
    assert entry["measured"] > entry["threshold"]
    # The measured value is the optimal partition's misspeculation cost.
    assert entry["measured"] == candidate["misspeculation_cost"]
    # Criterion 1: threshold = cost_fraction * dynamic body size.
    assert entry["threshold"] == pytest.approx(
        SptConfig().cost_fraction * candidate["dynamic_body_size"], rel=1e-3
    )


def test_prefork_threshold_rejection():
    entry, candidate = _sole(
        _reject(GUARDED, n=100, cost_fraction=1000.0, min_body_size=2),
        "prefork_threshold",
    )
    assert candidate["category"] == "high_cost"
    assert entry["measured"] > entry["threshold"]
    assert entry["measured"] == pytest.approx(
        candidate["prefork_size"], rel=1e-3
    )


def test_estimated_benefit_rejection():
    entry, candidate = _sole(
        _reject(BASE, cost_fraction=100.0, selection_margin=1e-4),
        "estimated_benefit",
    )
    assert candidate["category"] == "no_estimated_benefit"
    assert entry["threshold"] == 0.0
    assert entry["measured"] <= 0.0


def test_nest_conflict_rejection():
    entries = _reject(
        NEST, n=64, cost_fraction=100.0, selection_margin=10.0,
        min_body_size=2, fork_overhead_cycles=0.0, commit_overhead_cycles=0.0,
    )
    entry, candidate = _sole(entries, "nest_conflict")
    assert candidate["category"] == "nest_conflict"
    # measured = this loop's benefit, threshold = the winning rival's.
    assert entry["measured"] <= entry["threshold"]
    assert "outranked by" in entry["detail"]


def test_transform_error_rejection(monkeypatch):
    """A loop that passes selection but fails the pass-2 transform must
    surface the error as a rejection in the report."""
    from repro.core import pipeline as pipeline_mod

    def explode(module, func, loop, partition, graph):
        raise TransformError(f"synthetic failure in {loop.header}")

    monkeypatch.setattr(pipeline_mod, "transform_loop", explode)
    entries = _reject(
        NEST, n=64, cost_fraction=100.0, selection_margin=10.0,
        min_body_size=2, fork_overhead_cycles=0.0, commit_overhead_cycles=0.0,
    )
    entry, candidate = _sole(entries, "transform_error")
    assert "synthetic failure" in entry["detail"]
    assert candidate["transform_error"] == entry["detail"]
