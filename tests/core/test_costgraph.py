"""Cost-graph construction tests (§4.2.2) on real IR."""

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.costgraph import build_cost_graph
from repro.core.violation import find_violation_candidates
from repro.ir import parse_module
from repro.ssa import build_ssa

SOURCE = """\
module t
func f(n) {
entry:
  acc = copy 0
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  a = mul acc, 3
  b = add a, i
  acc = add b, 1
  dead_to_cost = mul n, 7
  call sink(dead_to_cost)
  i = add i, 1
  jump head
exit:
  ret acc
}
"""


def _graph():
    module = parse_module(SOURCE)
    func = module.function("f")
    build_ssa(func)
    nest = LoopNest.build(func)
    graph = build_dep_graph(module, func, nest.loops[0])
    candidates = find_violation_candidates(graph)
    return graph, candidates, build_cost_graph(graph, candidates)


def test_pseudo_node_per_candidate():
    graph, candidates, cg = _graph()
    assert len(cg.pseudos) == len(candidates)
    for vc in candidates:
        assert vc.instr in cg.pseudos


def test_candidate_statements_are_ordinary_nodes_too():
    """The paper's Figure 6 shows D, E, F both as pseudo nodes and as
    operation nodes."""
    graph, candidates, cg = _graph()
    for vc in candidates:
        assert cg.has_node(vc.instr)


def test_closure_follows_intra_true_edges():
    graph, candidates, cg = _graph()
    # acc's staleness propagates: a = mul acc -> b = add a -> acc = add b.
    opcode_bases = {
        getattr(node.dest, "base", None)
        for node in cg.topo_nodes
        if getattr(node, "dest", None) is not None
    }
    assert {"a", "b", "acc"} <= opcode_bases


def test_topological_order_is_consistent():
    graph, candidates, cg = _graph()
    position = {id(node): i for i, node in enumerate(cg.topo_nodes)}
    for dst, preds in cg.in_edges.items():
        if id(dst) not in position:
            continue
        for pred, _ in preds:
            if id(pred) in position:
                assert position[id(pred)] < position[id(dst)]


def test_node_costs_match_instr_costs():
    graph, candidates, cg = _graph()
    for node in cg.topo_nodes:
        assert cg.costs[node] == node.cost


def test_nodes_unreachable_from_candidates_are_excluded():
    """An op with no dependence path from any violation candidate can
    never be re-executed -- it must not appear in the cost graph.

    In SOURCE everything reachable feeds from acc/i, but the loop-
    invariant `mul n, 7` chain does not."""
    graph, candidates, cg = _graph()
    for node in cg.topo_nodes:
        dest = getattr(node, "dest", None)
        assert dest is None or dest.base != "dead_to_cost"
