"""Violation-candidate, VC-dep graph, and partition-search tests."""

import math

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.costgraph import build_cost_graph
from repro.core.costmodel import misspeculation_cost
from repro.core.partition import brute_force_partition, find_optimal_partition
from repro.core.vcdep import VCDepGraph, statement_closure
from repro.core.violation import find_violation_candidates
from repro.ir import parse_module
from repro.ssa import build_ssa

SIMPLE = """\
module t
func f(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  x = mul i, 3
  s = add s, x
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def _graph_for(source, func_name="f", loop_index=0, **kwargs):
    module = parse_module(source)
    func = module.function(func_name)
    build_ssa(func)
    nest = LoopNest.build(func)
    loop = nest.loops[loop_index]
    return module, func, loop, build_dep_graph(module, func, loop, **kwargs)


def _vc_bases(candidates):
    return sorted(vc.instr.dest.base for vc in candidates if vc.instr.dest)


def test_violation_candidates_are_backedge_defs():
    _, _, _, graph = _graph_for(SIMPLE)
    candidates = find_violation_candidates(graph)
    assert _vc_bases(candidates) == ["i", "s"]
    for vc in candidates:
        assert math.isclose(vc.violation_prob, 1.0)
        assert len(vc.readers) == 1


def test_vcdep_graph_has_no_edge_between_independent_vcs():
    _, _, _, graph = _graph_for(SIMPLE)
    candidates = find_violation_candidates(graph)
    vcdep = VCDepGraph(graph, candidates)
    assert len(vcdep) == 2
    assert vcdep.preds[0] == set()
    assert vcdep.preds[1] == set()


def test_statement_closure_drags_operand_producers():
    _, func, _, graph = _graph_for(SIMPLE)
    candidates = find_violation_candidates(graph)
    s_update = next(vc.instr for vc in candidates if vc.instr.dest.base == "s")
    closure = statement_closure(graph, [s_update])
    opcodes = sorted(
        f"{i.opcode}:{i.dest.base}" for i in closure if i.dest is not None
    )
    # s = add s, x drags x = mul i, 3 plus the header phis it reads.
    assert "binop:x" in opcodes
    assert "binop:s" in opcodes


def test_empty_prefork_cost_matches_manual_model():
    _, _, _, graph = _graph_for(SIMPLE)
    candidates = find_violation_candidates(graph)
    cg = build_cost_graph(graph, candidates)
    # All five costly body ops (c, br, x, s, i) re-execute with prob 1.
    assert math.isclose(misspeculation_cost(cg, set()), 5.0)


def test_prefork_of_induction_update_drops_cost():
    _, _, _, graph = _graph_for(SIMPLE)
    candidates = find_violation_candidates(graph)
    cg = build_cost_graph(graph, candidates)
    i_update = next(vc.instr for vc in candidates if vc.instr.dest.base == "i")
    # With the induction update pre-fork, only s = add s, x re-executes.
    assert math.isclose(misspeculation_cost(cg, {i_update}), 1.0)


def test_optimal_partition_matches_brute_force_simple():
    _, _, _, graph = _graph_for(SIMPLE)
    config = SptConfig(prefork_fraction=0.8)
    optimal = find_optimal_partition(graph, config)
    brute = brute_force_partition(graph, config)
    assert math.isclose(optimal.cost, brute.cost)
    assert optimal.prefork_size <= config.prefork_size_threshold(
        optimal.body_size
    )


def test_partition_respects_size_threshold():
    _, _, _, graph = _graph_for(SIMPLE)
    # Tight threshold: only the cheapest single candidate fits.
    config = SptConfig(prefork_fraction=0.25)
    result = find_optimal_partition(graph, config)
    brute = brute_force_partition(graph, config)
    assert math.isclose(result.cost, brute.cost)
    assert result.prefork_size <= config.prefork_size_threshold(result.body_size)


CHAINED = """\
module t
func f(n) {
entry:
  a = copy 0
  b = copy 0
  d = copy 0
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  a = add a, 1
  b = add b, a
  d = add d, b
  i = add i, 1
  jump head
exit:
  ret d
}
"""


def test_chained_vcs_create_vcdep_edges():
    _, _, _, graph = _graph_for(CHAINED)
    candidates = find_violation_candidates(graph)
    vcdep = VCDepGraph(graph, candidates)
    bases = [vc.instr.dest.base for vc in vcdep.candidates]
    a, b, d = bases.index("a"), bases.index("b"), bases.index("d")
    assert a in vcdep.preds[b]
    assert b in vcdep.preds[d]
    assert a in vcdep.preds[d]  # transitive through the closure


def test_chained_search_matches_brute_force():
    _, _, _, graph = _graph_for(CHAINED)
    for fraction in (0.2, 0.4, 0.6, 1.0):
        config = SptConfig(prefork_fraction=fraction)
        optimal = find_optimal_partition(graph, config)
        brute = brute_force_partition(graph, config)
        assert math.isclose(optimal.cost, brute.cost), fraction


def test_pruning_does_not_change_result():
    _, _, _, graph = _graph_for(CHAINED)
    config = SptConfig(prefork_fraction=0.8)
    pruned = find_optimal_partition(graph, config, use_pruning=True)
    unpruned = find_optimal_partition(graph, config, use_pruning=False)
    assert math.isclose(pruned.cost, unpruned.cost)
    assert pruned.search_nodes <= unpruned.search_nodes


def test_too_many_vcs_skips_loop():
    _, _, _, graph = _graph_for(CHAINED)
    config = SptConfig(max_violation_candidates=2)
    result = find_optimal_partition(graph, config)
    assert result.skipped_too_many_vcs
    assert result.cost == float("inf")


CONDITIONAL = """\
module t
func f(n) {
entry:
  x = copy 0
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  m = mod i, 10
  z = eq m, 0
  br z, update, latch
update:
  x = add x, 5
  jump latch
latch:
  y = mul x, 2
  call sink(y)
  i = add i, 1
  jump head
exit:
  ret x
}
"""


def test_conditional_update_has_reduced_violation_prob():
    """x is modified only ~10% of iterations; the VC expansion through
    the latch phi must weight it by its reaching probability."""
    module, func, loop, graph = _graph_for(CONDITIONAL)
    candidates = find_violation_candidates(graph)
    x_vc = next(
        vc for vc in candidates if vc.instr.dest and vc.instr.dest.base == "x"
    )
    # Static estimate: the update block's reach is 0.5 (even split).
    assert math.isclose(x_vc.violation_prob, 0.5)


def test_conditional_update_with_edge_profile():
    from repro.profiling import EdgeProfile, run_module

    module = parse_module(CONDITIONAL)
    profile = EdgeProfile()
    run_module(
        module,
        func_name="f",
        args=[100],
        tracers=[profile],
        intrinsics={"sink": lambda m, v: None},
    )
    func = module.function("f")
    build_ssa(func)
    nest = LoopNest.build(func)
    graph = build_dep_graph(module, func, nest.loops[0], edge_profile=profile)
    candidates = find_violation_candidates(graph)
    x_vc = next(
        vc for vc in candidates if vc.instr.dest and vc.instr.dest.base == "x"
    )
    assert abs(x_vc.violation_prob - 0.1) < 0.02
