"""Loop unrolling tests (paper §7.1)."""

import pytest

from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.unroll import choose_factor, unroll_function, unroll_loop
from repro.ir import parse_module
from repro.profiling import run_module
from repro.ssa import build_ssa

COUNTED = """\
module t
func main(n) {
entry:
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  s = add s, i
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def _tagged(source, kind="for"):
    module = parse_module(source)
    func = module.function("main")
    func.block("head").annotations["loop_kind"] = kind
    return module, func


def test_unroll_preserves_semantics_for_any_trip_count():
    for factor in (2, 3, 4):
        for n in (0, 1, 2, 5, 7, 100):
            module, func = _tagged(COUNTED)
            nest = LoopNest.build(func)
            assert unroll_loop(func, nest.loops[0], factor)
            expected = sum(range(n))
            assert run_module(module, args=[n])[0] == expected, (factor, n)


def test_unrolled_loop_has_main_and_remainder():
    module, func = _tagged(COUNTED)
    nest = LoopNest.build(func)
    original_size = nest.loops[0].body_size(func)
    assert unroll_loop(func, nest.loops[0], 4)
    nest2 = LoopNest.build(func)
    # Guarded unrolling leaves two loops: the k-wide main loop and the
    # original as the remainder.
    assert len(nest2.loops) == 2
    sizes = sorted(loop.body_size(func) for loop in nest2.loops)
    assert sizes[0] == original_size
    assert sizes[1] >= 3.5 * original_size


def test_unrolled_main_loop_has_single_header_exit():
    from repro.analysis.cfg import CFG
    from repro.core.transform import check_transformable
    from repro.ssa import build_ssa

    module, func = _tagged(COUNTED)
    nest = LoopNest.build(func)
    assert unroll_loop(func, nest.loops[0], 4)
    build_ssa(func)
    nest2 = LoopNest.build(func)
    big = max(nest2.loops, key=lambda l: l.body_size(func))
    # The whole point: the unrolled loop is still SPT-transformable.
    check_transformable(func, big)


def test_uncounted_loop_is_left_alone():
    source = """\
module t
func main(n) {
entry:
  x = copy 1
  jump head
head:
  c = lt x, n
  br c, body, exit
body:
  x = mul x, 2
  jump head
exit:
  ret x
}
"""
    module = parse_module(source)
    func = module.function("main")
    nest = LoopNest.build(func)
    # x *= 2 is not a constant-step counter: no unrolling.
    assert not unroll_loop(func, nest.loops[0], 4)
    assert run_module(module, args=[100])[0] == 128


def test_unroll_factor_targets_configured_size():
    config = SptConfig(unroll_target_size=24, max_unroll_factor=8)
    assert choose_factor(3, config) == 8
    assert choose_factor(6, config) == 4
    assert choose_factor(12, config) == 2
    assert choose_factor(24, config) == 1
    assert choose_factor(100, config) == 1


def test_while_loops_skipped_unless_enabled():
    module, func = _tagged(COUNTED, kind="while")
    report = unroll_function(func, SptConfig(unroll_while_loops=False))
    assert report.unrolled == []
    assert report.skipped_while == ["head"]

    module, func = _tagged(COUNTED, kind="while")
    report = unroll_function(func, SptConfig(unroll_while_loops=True))
    assert len(report.unrolled) == 1
    assert run_module(module, args=[10])[0] == 45


def test_unroll_after_ssa_is_rejected():
    module, func = _tagged(COUNTED)
    build_ssa(func)
    nest = LoopNest.build(func)
    with pytest.raises(ValueError):
        unroll_loop(func, nest.loops[0], 2)


def test_unrolling_disabled_by_config():
    module, func = _tagged(COUNTED)
    report = unroll_function(func, SptConfig(enable_unrolling=False))
    assert report.unrolled == []
