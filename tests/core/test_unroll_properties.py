"""Property-based unrolling tests: guarded unrolling of random counted
loops must preserve semantics for every trip count and factor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.loops import LoopNest
from repro.core.unroll import unroll_loop
from repro.ir import parse_module
from repro.profiling import run_module

_BODY_STMTS = [
    "  s = add s, i",
    "  s = xor s, {k}",
    "  t = mul i, {k}\n  s = add s, t",
    "  s = add s, {k}",
    "  u = shl i, 1\n  s = sub s, u",
]


@st.composite
def counted_loop_source(draw):
    step = draw(st.integers(1, 3))
    start = draw(st.integers(0, 3))
    cmp_op = draw(st.sampled_from(["lt", "le"]))
    lines = [
        stmt.format(k=draw(st.integers(1, 9)))
        for stmt in draw(
            st.lists(st.sampled_from(_BODY_STMTS), min_size=1, max_size=4)
        )
    ]
    body = "\n".join(lines)
    source = f"""\
module t
func main(n) {{
entry:
  s = copy 0
  i = copy {start}
  jump head
head:
  c = {cmp_op} i, n
  br c, body, exit
body:
{body}
  i = add i, {step}
  jump head
exit:
  ret s
}}
"""
    return source


@settings(max_examples=40, deadline=None)
@given(
    counted_loop_source(),
    st.integers(2, 6),
    st.integers(0, 25),
)
def test_guarded_unroll_preserves_semantics(source, factor, n):
    baseline = parse_module(source)
    want, _ = run_module(baseline, args=[n])

    module = parse_module(source)
    func = module.function("main")
    nest = LoopNest.build(func)
    matched = unroll_loop(func, nest.loops[0], factor)
    got, _ = run_module(module, args=[n])
    assert got == want, (factor, n, matched)


@settings(max_examples=20, deadline=None)
@given(counted_loop_source(), st.integers(2, 4))
def test_unrolled_function_survives_ssa_and_runs(source, factor):
    from repro.ir import Module, verify_function
    from repro.ssa import build_ssa, optimize

    module = parse_module(source)
    func = module.function("main")
    nest = LoopNest.build(func)
    unroll_loop(func, nest.loops[0], factor)
    build_ssa(func)
    optimize(func)
    verify_function(module, func, ssa=True)

    baseline = parse_module(source)
    for n in (0, 1, factor, factor * 3 + 1):
        got, _ = run_module(module, args=[n])
        want, _ = run_module(baseline, args=[n])
        assert got == want, n
