"""SPT loop selection tests (§6.1) plus privatization."""

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig, anticipated_config, basic_config, best_config
from repro.core.partition import find_optimal_partition
from repro.core.privatize import privatize
from repro.core.selection import (
    CATEGORY_BODY_TOO_LARGE,
    CATEGORY_BODY_TOO_SMALL,
    CATEGORY_HIGH_COST,
    CATEGORY_LOW_TRIP,
    CATEGORY_NEST_CONFLICT,
    CATEGORY_TOO_MANY_VCS,
    CATEGORY_VALID,
    LoopCandidate,
    category_histogram,
    classify,
    estimated_benefit,
    select_spt_loops,
)
from repro.ir import parse_module
from repro.ssa import build_ssa


class _FakeLoop:
    def __init__(self, header, body):
        self.header = header
        self.body = body


class _FakePartition:
    def __init__(self, cost, prefork_size, skipped=False):
        self.cost = cost
        self.prefork_size = prefork_size
        self.skipped_too_many_vcs = skipped
        self.candidates = []
        self.prefork_vcs = []


def _candidate(
    header="h",
    body=None,
    cost=1.0,
    prefork=2.0,
    size=100.0,
    trip=50.0,
    iters=5000,
    skipped=False,
):
    loop = _FakeLoop(header, body if body is not None else {header})
    return LoopCandidate(
        "main",
        loop,
        partition=_FakePartition(cost, prefork, skipped),
        dynamic_body_size=size,
        trip_count=trip,
        total_iterations=iters,
    )


CONFIG = SptConfig()


def test_good_loop_is_valid():
    assert classify(_candidate(), CONFIG) == CATEGORY_VALID


def test_small_body_rejected():
    assert classify(_candidate(size=5), CONFIG) == CATEGORY_BODY_TOO_SMALL


def test_large_body_rejected():
    assert classify(_candidate(size=5000), CONFIG) == CATEGORY_BODY_TOO_LARGE


def test_low_trip_rejected():
    assert classify(_candidate(trip=1.2), CONFIG) == CATEGORY_LOW_TRIP


def test_high_cost_rejected():
    assert classify(_candidate(cost=50.0), CONFIG) == CATEGORY_HIGH_COST


def test_large_prefork_rejected():
    assert classify(_candidate(prefork=90.0), CONFIG) == CATEGORY_HIGH_COST


def test_too_many_vcs_rejected():
    assert classify(_candidate(skipped=True), CONFIG) == CATEGORY_TOO_MANY_VCS


def test_benefit_grows_with_lower_cost():
    cheap = _candidate(cost=0.5)
    pricey = _candidate(cost=10.0)
    assert estimated_benefit(cheap, CONFIG) > estimated_benefit(pricey, CONFIG)


def test_nest_conflict_keeps_higher_benefit_loop():
    outer = _candidate(header="outer", body={"outer", "inner", "x"}, iters=100)
    inner = _candidate(header="inner", body={"inner"}, iters=10_000)
    selected = select_spt_loops([outer, inner], CONFIG)
    assert [c.loop.header for c in selected] == ["inner"]
    assert outer.category == CATEGORY_NEST_CONFLICT


def test_sibling_loops_both_selected():
    a = _candidate(header="a", body={"a"})
    b = _candidate(header="b", body={"b"})
    selected = select_spt_loops([a, b], CONFIG)
    assert len(selected) == 2


def test_histogram_counts_each_category():
    cands = [
        _candidate(),
        _candidate(size=5),
        _candidate(trip=1.0),
        _candidate(cost=50.0),
    ]
    select_spt_loops(cands, CONFIG)
    histogram = category_histogram(cands)
    assert histogram[CATEGORY_VALID] == 1
    assert histogram[CATEGORY_BODY_TOO_SMALL] == 1
    assert histogram[CATEGORY_LOW_TRIP] == 1
    assert histogram[CATEGORY_HIGH_COST] == 1


def test_config_presets_grow_monotonically():
    basic = basic_config()
    best = best_config()
    anticipated = anticipated_config()
    assert not basic.enable_svp and not basic.enable_dep_profiling
    assert best.enable_svp and best.enable_dep_profiling
    assert not best.unroll_while_loops
    assert anticipated.unroll_while_loops
    assert anticipated.enable_modref_summaries
    assert anticipated.enable_privatization


PRIVATE = """\
module t
func main(n) {
  local tmp[8]
entry:
  p = addr tmp
  i = copy 0
  s = copy 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  t1 = mul i, 7
  t2 = add t1, 3
  t3 = mul t2, t2
  store p, 0, t3 !tmp
  v = load p, 0 !tmp
  s = add s, v
  i = add i, 1
  jump head
exit:
  ret s
}
"""


def test_privatization_removes_write_before_read_cross_edges():
    module = parse_module(PRIVATE)
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    graph = build_dep_graph(module, func, nest.loops[0])
    before = len([e for e in graph.cross_true_edges() if e.carrier == "mem"])
    assert before >= 1
    removed = privatize(graph)
    assert removed >= 1
    after = len([e for e in graph.cross_true_edges() if e.carrier == "mem"])
    assert after < before


def test_privatization_lowers_partition_cost():
    def cost_for(private: bool) -> float:
        module = parse_module(PRIVATE)
        func = module.function("main")
        build_ssa(func)
        nest = LoopNest.build(func)
        graph = build_dep_graph(module, func, nest.loops[0])
        if private:
            privatize(graph)
        return find_optimal_partition(graph, SptConfig()).cost

    assert cost_for(private=True) < cost_for(private=False)
