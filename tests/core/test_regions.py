"""Intra-iteration region speculation tests (§9 future work)."""

import pytest

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.regions import (
    choose_region_split,
    find_region_splits,
    spine_blocks,
)
from repro.ir import parse_module
from repro.machine.region_sim import RegionTraceCollector, simulate_region_loop
from repro.machine.timing import TimingModel
from repro.profiling import run_module
from repro.ssa import build_ssa

def _chain(prefix: str, length: int, seed_expr: str) -> str:
    """A straight dependence chain: ``<prefix>0 .. <prefix>{length-1}``."""
    lines = [f"  {prefix}0 = add {seed_expr}, 1"]
    for k in range(1, length):
        op = "mul" if k % 2 else "add"
        lines.append(f"  {prefix}{k} = {op} {prefix}{k - 1}, {k % 7 + 2}")
    return "\n".join(lines)


# Two independent heavy phases per iteration: the classic region-
# speculation shape (A fills `left`, B fills `right`; big bodies so the
# fork/commit overheads amortize -- exactly the body_too_large loops §9
# targets).
INDEPENDENT = f"""\
module t
func main(n) {{
  local left[256]
  local right[256]
entry:
  pl = addr left
  pr = addr right
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, phase_a, exit
phase_a:
  m = and i, 255
{_chain("a", 40, "i")}
  store pl, m, a39 !left
  jump phase_b
phase_b:
  mb = and i, 255
{_chain("b", 40, "i")}
  store pr, mb, b39 !right
  i = add i, 1
  jump head
exit:
  ret 0
}}
"""

# Region B consumes everything region A computes: splitting buys nothing.
DEPENDENT = f"""\
module t
func main(n) {{
  local out[256]
entry:
  p = addr out
  i = copy 0
  jump head
head:
  c = lt i, n
  br c, phase_a, exit
phase_a:
  m = and i, 255
{_chain("a", 40, "i")}
  jump phase_b
phase_b:
{_chain("b", 40, "a39")}
  store p, m, b39 !out
  i = add i, 1
  jump head
exit:
  ret 0
}}
"""


def _prepared(source):
    module = parse_module(source)
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    graph = build_dep_graph(module, func, loop)
    return module, func, loop, graph


def test_spine_blocks_found():
    module, func, loop, graph = _prepared(INDEPENDENT)
    spine = spine_blocks(func, loop)
    assert spine == ["phase_a", "phase_b"]


def test_independent_phases_split_well():
    module, func, loop, graph = _prepared(INDEPENDENT)
    config = SptConfig()
    split = choose_region_split(func, loop, graph, config)
    assert split is not None
    assert split.split_label == "phase_b"
    assert split.balance > 0.7
    # Only the cheap index recomputation misspeculates.
    assert split.cost < 0.35 * min(split.size_a, split.size_b)


def test_dependent_phases_not_worth_splitting():
    module, func, loop, graph = _prepared(DEPENDENT)
    config = SptConfig()
    splits = find_region_splits(func, loop, graph, config)
    # Splits exist, but the all-consuming dependence makes them bad.
    assert splits
    best = splits[0]
    assert best.cost > 0.5 * best.size_b or best.estimated_benefit(config) <= 0


def test_region_simulation_speeds_up_independent_phases():
    module, func, loop, graph = _prepared(INDEPENDENT)
    config = SptConfig()
    split = choose_region_split(func, loop, graph, config)
    collector = RegionTraceCollector(
        "main", loop.header, loop.body, split.b_labels, TimingModel()
    )
    run_module(module, args=[300], tracers=[collector])
    stats = simulate_region_loop(collector, split.split_label)
    assert stats.iterations == 300
    assert stats.balance > 0.7
    assert stats.misspeculation_ratio < 0.35
    assert stats.loop_speedup > 1.15


def test_region_simulation_penalizes_dependent_phases():
    module, func, loop, graph = _prepared(DEPENDENT)
    config = SptConfig()
    splits = find_region_splits(func, loop, graph, config)
    split = splits[0]
    collector = RegionTraceCollector(
        "main", loop.header, loop.body, split.b_labels, TimingModel()
    )
    run_module(module, args=[300], tracers=[collector])
    stats = simulate_region_loop(collector, split.split_label)
    # Everything B does is stale: heavy re-execution, no speedup.
    assert stats.misspeculation_ratio > 0.5
    assert stats.loop_speedup < 1.05


def test_estimates_track_simulation():
    """The compile-time cost estimate must rank the two programs the
    same way the simulation does."""
    config = SptConfig()
    results = {}
    for name, source in (("indep", INDEPENDENT), ("dep", DEPENDENT)):
        module, func, loop, graph = _prepared(source)
        splits = find_region_splits(func, loop, graph, config)
        best = splits[0]
        collector = RegionTraceCollector(
            "main", loop.header, loop.body, best.b_labels, TimingModel()
        )
        run_module(module, args=[200], tracers=[collector])
        stats = simulate_region_loop(collector, best.split_label)
        results[name] = (best.cost / max(best.size_b, 1), stats.reexec_cycles
                         / max(stats.b_cycles, 1))
    est_indep, meas_indep = results["indep"]
    est_dep, meas_dep = results["dep"]
    assert est_indep < est_dep
    assert meas_indep < meas_dep


def test_pipeline_records_region_splits():
    """compile_spt with region speculation enabled records splits for
    body_too_large loops (and only then)."""
    from repro.core import Workload, compile_spt
    from repro.core.selection import CATEGORY_BODY_TOO_LARGE

    config = SptConfig(
        max_body_size=40,
        enable_region_speculation=True,
        enable_unrolling=False,
    )
    module = parse_module(INDEPENDENT)
    result = compile_spt(module, config, Workload(args=(50,)))
    assert result.category_histogram()[CATEGORY_BODY_TOO_LARGE] >= 1
    assert result.region_splits
    split = result.region_splits[0]
    assert split.split_label == "phase_b"

    # With the flag off, nothing is recorded.
    module2 = parse_module(INDEPENDENT)
    config_off = config.with_overrides(enable_region_speculation=False)
    result2 = compile_spt(module2, config_off, Workload(args=(50,)))
    assert result2.region_splits == []
