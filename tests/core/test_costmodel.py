"""Cost model tests, including the paper's §4.2.5 worked example."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costgraph import CostGraph
from repro.core.costmodel import (
    CostEvaluator,
    misspeculation_cost,
    reexecution_probabilities,
)


def paper_example_graph() -> CostGraph:
    """The cost graph of Figures 5/6.

    Violation candidates D, E, F (violation probability 1: no branches),
    operation nodes A..F with unit cost, edges:
      D' -> A (0.2), E' -> B (0.1), F' -> C (0.2), B -> C (0.5), C -> E (1.0)
    """
    cg = CostGraph()
    for vc in ("D", "E", "F"):
        cg.add_pseudo(vc, 1.0)
    for node in ("A", "B", "C", "D", "E", "F"):
        cg.add_node(node, 1.0)
    cg.add_edge_from_pseudo("D", "A", 0.2)
    cg.add_edge_from_pseudo("E", "B", 0.1)
    cg.add_edge_from_pseudo("F", "C", 0.2)
    cg.add_edge("B", "C", 0.5)
    cg.add_edge("C", "E", 1.0)
    return cg


def test_paper_worked_example_probabilities():
    cg = paper_example_graph()
    v = reexecution_probabilities(cg, prefork={"D"})
    assert v[("pseudo", "D")] == 0.0
    assert v[("pseudo", "E")] == 1.0
    assert v[("pseudo", "F")] == 1.0
    assert math.isclose(v["A"], 0.0)
    assert math.isclose(v["B"], 0.1)
    assert math.isclose(v["C"], 0.24)
    assert math.isclose(v["D"], 0.0)
    assert math.isclose(v["E"], 0.24)
    assert math.isclose(v["F"], 0.0)


def test_paper_worked_example_cost_is_058():
    cg = paper_example_graph()
    assert math.isclose(misspeculation_cost(cg, prefork={"D"}), 0.58)


def test_empty_prefork_costs_more():
    cg = paper_example_graph()
    all_out = misspeculation_cost(cg, prefork=set())
    with_d = misspeculation_cost(cg, prefork={"D"})
    assert all_out > with_d
    # v(A) becomes 0.2 instead of 0 -> cost increases by exactly 0.2.
    assert math.isclose(all_out, with_d + 0.2)


def test_full_prefork_costs_zero():
    cg = paper_example_graph()
    assert misspeculation_cost(cg, prefork={"D", "E", "F"}) == 0.0


def test_costs_scale_with_node_cost():
    cg = paper_example_graph()
    cg.costs["C"] = 10.0
    # Contribution of C grows from 0.24 to 2.4.
    assert math.isclose(misspeculation_cost(cg, {"D"}), 0.58 - 0.24 + 2.4)


def test_evaluator_caches():
    cg = paper_example_graph()
    evaluator = CostEvaluator(cg)
    a = evaluator.cost({"D"})
    b = evaluator.cost({"D"})
    assert a == b
    assert evaluator.evaluations == 1


def _random_dag(draw):
    n_vcs = draw(st.integers(1, 4))
    n_ops = draw(st.integers(1, 8))
    cg = CostGraph()
    vcs = [f"vc{i}" for i in range(n_vcs)]
    for vc in vcs:
        cg.add_pseudo(vc, draw(st.floats(0.0, 1.0)))
    ops = [f"op{i}" for i in range(n_ops)]
    for op in ops:
        cg.add_node(op, draw(st.floats(0.0, 5.0)))
    for vc in vcs:
        for op in ops:
            if draw(st.booleans()):
                cg.add_edge_from_pseudo(vc, op, draw(st.floats(0.0, 1.0)))
    for i in range(n_ops):
        for j in range(i + 1, n_ops):
            if draw(st.booleans()):
                cg.add_edge(ops[i], ops[j], draw(st.floats(0.0, 1.0)))
    return cg, vcs


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_cost_is_monotone_in_prefork_set(data):
    """Adding a VC to the pre-fork region never increases the cost --
    the property the branch-and-bound pruning relies on (§5)."""
    cg, vcs = _random_dag(data.draw)
    subset = {vc for vc in vcs if data.draw(st.booleans())}
    extra = data.draw(st.sampled_from(vcs))
    cost_small = misspeculation_cost(cg, subset)
    cost_big = misspeculation_cost(cg, subset | {extra})
    assert cost_big <= cost_small + 1e-9


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_probabilities_stay_in_unit_interval(data):
    cg, vcs = _random_dag(data.draw)
    v = reexecution_probabilities(cg, prefork=set())
    for value in v.values():
        assert -1e-9 <= value <= 1.0 + 1e-9
