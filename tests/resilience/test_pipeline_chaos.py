"""Chaos tests: every firewalled phase faults, compilation completes.

``$REPRO_FAULT`` injects raise/hang faults at phase entry; the
assertions are always the same shape -- ``compile_spt`` returns (never
raises), the fault shows up as a typed :class:`DegradationRecord`, the
affected loops degrade to the sequential baseline, and everything is
visible in telemetry, summaries and ``repro explain`` output.
"""

import json

import pytest

from repro.core.config import best_config
from repro.core.pipeline import Workload, compile_spt
from repro.core.selection import CATEGORY_CONTAINED
from repro.frontend import compile_minic
from repro.obs.telemetry import Telemetry
from repro.report.explain import explain_text
from repro.resilience.degradation import (
    KIND_ANALYSIS_ERROR,
    KIND_PROFILE_BUDGET,
    KIND_WATCHDOG_TIMEOUT,
)
from repro.resilience.faults import FAULT_ENV_VAR, HANG_ENV_VAR
from repro.resilience.ladder import (
    RUNG_FULL,
    RUNG_NO_INCREMENTAL,
    RUNG_SMALL_BUDGET,
)

from .conftest import PROGRAM


def compile_program(config=None, telemetry=None, fuel=50_000_000):
    module = compile_minic(PROGRAM)
    return compile_spt(
        module,
        config or best_config(),
        Workload(args=(32,), fuel=fuel),
        telemetry=telemetry,
    )


@pytest.mark.parametrize(
    "phase", ["profile", "depgraph", "search", "svp", "transform"]
)
def test_phase_raise_is_contained(monkeypatch, phase):
    monkeypatch.setenv(FAULT_ENV_VAR, f"{phase}:raise")
    result = compile_program()
    phases = {record.phase for record in result.degradations}
    assert phase in phases
    for record in result.degradations:
        assert record.kind == KIND_ANALYSIS_ERROR
        assert record.error_type == "FaultInjected"
    # The summary (and therefore the batch manifest) serializes cleanly.
    summary = result.to_dict()
    assert summary["degradations"]
    json.dumps(summary, sort_keys=True)


def test_ladder_recovers_after_bounded_fault(monkeypatch):
    # One injected fault: the full rung faults, the no_incremental
    # retry succeeds, and the loop is still analyzed (and selectable).
    monkeypatch.setenv(FAULT_ENV_VAR, "search:raise:1")
    telemetry = Telemetry()
    result = compile_program(telemetry=telemetry)
    assert result.selected  # recovery, not loss
    recovered = [
        c
        for c in result.candidates
        if c.degradation is not None and c.partition is not None
    ]
    assert recovered
    assert recovered[0].degradation.rung == RUNG_FULL
    assert telemetry.counters["resilience.ladder.recovered"] >= 1
    assert telemetry.counters[f"resilience.ladder.{RUNG_FULL}"] >= 1
    outcomes = {
        e.attrs.get("outcome")
        for e in telemetry.events
        if e.name == "resilience.ladder"
    }
    assert "recovered" in outcomes


def test_persistent_fault_descends_ladder_to_skip(monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "search:raise")
    telemetry = Telemetry()
    result = compile_program(telemetry=telemetry)
    assert not result.selected
    for candidate in result.candidates:
        assert candidate.category == CATEGORY_CONTAINED
        assert candidate.degradation is not None
        assert candidate.partition is None
        assert not candidate.selected
    # Every loop walked all three analysis rungs before skipping.
    rungs = [record.rung for record in result.degradations]
    for rung in (RUNG_FULL, RUNG_NO_INCREMENTAL, RUNG_SMALL_BUDGET):
        assert rung in rungs
        assert telemetry.counters[f"resilience.ladder.{rung}"] >= 1
    assert telemetry.counters["resilience.ladder.skip"] >= 1
    assert len(result.degradations) == 3 * len(result.candidates)
    histogram = result.category_histogram()
    assert histogram[CATEGORY_CONTAINED] == len(result.candidates)


def test_no_ladder_skips_immediately(monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "search:raise")
    config = best_config().with_overrides(enable_degradation_ladder=False)
    result = compile_program(config=config)
    assert result.candidates
    # One record per loop: no retries were attempted.
    assert len(result.degradations) == len(result.candidates)
    for record in result.degradations:
        assert record.rung == RUNG_FULL
    for candidate in result.candidates:
        assert candidate.category == CATEGORY_CONTAINED


def test_hang_is_broken_by_phase_deadline(monkeypatch):
    # A cooperative hang in the search phase trips the armed phase
    # watchdog; the firewall contains the WatchdogTimeout.
    monkeypatch.setenv(FAULT_ENV_VAR, "search:hang")
    monkeypatch.setenv(HANG_ENV_VAR, "30")
    config = best_config().with_overrides(
        phase_deadline_ms=100.0, enable_degradation_ladder=False
    )
    result = compile_program(config=config)
    kinds = {record.kind for record in result.degradations}
    assert kinds == {KIND_WATCHDOG_TIMEOUT}
    for candidate in result.candidates:
        assert candidate.category == CATEGORY_CONTAINED


def test_fuel_exhaustion_is_a_structured_degradation():
    # Satellite: a workload that exceeds its fuel budget degrades the
    # profile phase instead of raising FuelExhausted out of compile_spt.
    result = compile_program(fuel=50)
    records = [r for r in result.degradations if r.phase == "profile"]
    assert len(records) == 1
    assert records[0].kind == KIND_PROFILE_BUDGET
    assert records[0].error_type == "FuelExhausted"
    # Unprofiled loops are rejected by the selection criteria, safely.
    assert not result.selected


def test_explain_renders_contained_faults(monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "search:raise")
    config = best_config()
    result = compile_program(config=config)
    report = explain_text(result, config)
    assert "contained_fault" in report
    assert "degradation" in report
    assert "contained degradation(s):" in report
    assert "analysis_error" in report
