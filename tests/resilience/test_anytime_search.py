"""Anytime partition search: deadline and node-budget semantics.

The contract under test:

* **No pressure** -- an armed-but-never-expiring deadline changes
  nothing: results are bitwise identical to the deadline-free search,
  on the golden corpus and on generated programs.
* **Pressure** -- a tiny deadline (or node budget) truncates the
  search but the returned best-so-far partition is still *legal*
  (downward-closed, size-bounded, cost recomputes from scratch) and is
  explicitly flagged ``optimal: false``.
* **Boundary** -- a search that finishes using exactly budget-many
  nodes suppressed nothing and stays proven optimal.
"""

import glob
import os

import pytest

from repro.core.config import SptConfig, best_config
from repro.core.costgraph import build_cost_graph
from repro.core.costmodel import CostEvaluator
from repro.core.partition import find_optimal_partition
from repro.core.pipeline import Workload, compile_spt
from repro.core.vcdep import VCDepGraph
from repro.core.violation import find_violation_candidates
from repro.frontend import compile_minic
from repro.report.explain import explain_text
from repro.resilience.degradation import KIND_SEARCH_BUDGET
from repro.testkit.generator import generate_program
from repro.testkit.oracles import _analyzable_loops

from .conftest import PROGRAM

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "golden", "corpus"
)

#: A deadline that can never fire within a test run.
HUGE_DEADLINE_MS = 600_000.0
#: A deadline that has already passed by the first clock read.
TINY_DEADLINE_MS = 1e-4


def _loops_with_candidates(source):
    for module, func, loop, graph in _analyzable_loops(source):
        if find_violation_candidates(graph):
            yield module, func, loop, graph


def assert_legal_partition(result, graph, config):
    """The oracle-3 legality conditions on a reported partition."""
    candidates = find_violation_candidates(graph)
    forced = {
        vc.instr
        for vc in candidates
        if graph.info[vc.instr].block == graph.loop.header
    }
    searchable = [vc for vc in candidates if vc.instr not in forced]
    vcdep = VCDepGraph(graph, searchable)
    index_of = {id(vc.instr): i for i, vc in enumerate(vcdep.candidates)}
    selected = set()
    for vc in result.prefork_vcs:
        index = index_of.get(id(vc.instr))
        assert index is not None, "pre-fork VC not among searchable"
        selected.add(index)
    assert vcdep.downward_closed(selected)
    threshold = config.prefork_size_threshold(result.body_size)
    if selected:
        assert result.prefork_size <= threshold + 1e-9
    cg = build_cost_graph(graph, candidates)
    keys = {vc.instr for vc in result.prefork_vcs} | forced
    recomputed = CostEvaluator(cg).cost(keys)
    assert abs(recomputed - result.cost) <= 1e-12


@pytest.mark.parametrize(
    "path",
    sorted(glob.glob(os.path.join(CORPUS_DIR, "*.c"))),
    ids=os.path.basename,
)
def test_no_pressure_is_bitwise_identical_on_corpus(path):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    baseline = compile_spt(
        compile_minic(source), best_config(), Workload(args=(96,))
    )
    armed = compile_spt(
        compile_minic(source),
        best_config().with_overrides(search_deadline_ms=HUGE_DEADLINE_MS),
        Workload(args=(96,)),
    )
    assert armed.to_dict() == baseline.to_dict()


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_no_pressure_is_bitwise_identical_on_generated(seed):
    source = generate_program(seed).source()
    config = SptConfig()
    armed = SptConfig().with_overrides(search_deadline_ms=HUGE_DEADLINE_MS)
    for _module, _func, _loop, graph in _loops_with_candidates(source):
        baseline = find_optimal_partition(graph, config)
        result = find_optimal_partition(graph, armed)
        assert result.to_dict() == baseline.to_dict()


def test_tiny_deadline_returns_legal_flagged_partition():
    config = SptConfig().with_overrides(search_deadline_ms=TINY_DEADLINE_MS)
    checked = 0
    for _module, _func, _loop, graph in _loops_with_candidates(PROGRAM):
        unconstrained = find_optimal_partition(graph, SptConfig())
        result = find_optimal_partition(graph, config)
        if unconstrained.search_nodes <= 1:
            continue  # nothing to truncate on this loop
        checked += 1
        assert result.deadline_exhausted
        assert not result.optimal
        assert result.to_dict()["optimal"] is False
        assert result.to_dict()["deadline_exhausted"] is True
        # Best-so-far after zero expansions is the always-legal seed.
        assert_legal_partition(result, graph, config)
    assert checked >= 1


def test_tiny_node_budget_returns_legal_flagged_partition():
    checked = 0
    for _module, _func, _loop, graph in _loops_with_candidates(PROGRAM):
        unconstrained = find_optimal_partition(graph, SptConfig())
        if unconstrained.search_nodes <= 1:
            continue
        config = SptConfig().with_overrides(max_search_nodes=1)
        result = find_optimal_partition(graph, config)
        checked += 1
        assert result.budget_exhausted
        assert not result.optimal
        assert result.to_dict()["budget_exhausted"] is True
        assert_legal_partition(result, graph, config)
    assert checked >= 1


def test_exact_budget_finish_stays_optimal():
    # budget_exhausted marks an actually-suppressed expansion: a search
    # that used exactly budget-many nodes proved its optimum.
    for _module, _func, _loop, graph in _loops_with_candidates(PROGRAM):
        unconstrained = find_optimal_partition(graph, SptConfig())
        if unconstrained.skipped_too_many_vcs:
            continue
        config = SptConfig().with_overrides(
            max_search_nodes=unconstrained.search_nodes
        )
        result = find_optimal_partition(graph, config)
        assert not result.budget_exhausted
        assert result.optimal
        assert result.cost == unconstrained.cost
        assert result.search_nodes == unconstrained.search_nodes


def test_pipeline_records_search_budget_degradation():
    config = best_config().with_overrides(
        search_deadline_ms=TINY_DEADLINE_MS
    )
    module = compile_minic(PROGRAM)
    result = compile_spt(module, config, Workload(args=(32,)))
    kinds = {record.kind for record in result.degradations}
    assert KIND_SEARCH_BUDGET in kinds
    truncated = [
        c
        for c in result.candidates
        if c.partition is not None
        and not c.partition.skipped_too_many_vcs
        and c.partition.deadline_exhausted
    ]
    assert truncated
    report = explain_text(result, config)
    assert "NOT proven optimal" in report
    assert "anytime deadline" in report
    assert "contained degradation(s):" in report


def test_pipeline_optimal_flag_in_summaries():
    config = best_config()
    module = compile_minic(PROGRAM)
    result = compile_spt(module, config, Workload(args=(32,)))
    summary = result.to_dict()
    with_partition = [e for e in summary["candidates"] if "optimal" in e]
    assert with_partition
    for entry in with_partition:
        assert entry["optimal"] is True
    report = explain_text(result, config)
    assert "proven optimal (search completed)" in report
