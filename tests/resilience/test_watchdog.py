"""Unit tests for the wall-clock / recursion watchdog."""

import pytest

from repro.resilience.watchdog import (
    POLL_STRIDE,
    DepthExceeded,
    ProgramTimeout,
    Watchdog,
    WatchdogTimeout,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_no_deadline_never_expires():
    dog = Watchdog()
    assert not dog.expired()
    dog.check()
    for _ in range(POLL_STRIDE * 3):
        dog.poll()


def test_expired_flips_when_deadline_passes():
    clock = FakeClock()
    dog = Watchdog(deadline_ms=100.0, clock=clock)
    assert not dog.expired()
    clock.now = 0.099
    assert not dog.expired()
    clock.now = 0.101
    assert dog.expired()


def test_check_raises_watchdog_timeout():
    clock = FakeClock()
    dog = Watchdog(deadline_ms=10.0, clock=clock)
    dog.check()
    clock.now = 1.0
    with pytest.raises(WatchdogTimeout):
        dog.check()


def test_poll_amortizes_clock_reads():
    clock = FakeClock()
    dog = Watchdog(deadline_ms=10.0, clock=clock)
    clock.now = 1.0  # already expired, but poll only looks every stride
    for _ in range(POLL_STRIDE - 1):
        dog.poll()
    with pytest.raises(WatchdogTimeout):
        dog.poll()  # the POLL_STRIDE-th call consults the clock


def test_depth_guard():
    dog = Watchdog(max_depth=3)
    dog.descend()
    dog.descend()
    dog.descend()
    with pytest.raises(DepthExceeded):
        dog.descend()
    dog.ascend()
    assert dog.depth == 3


def test_ambient_stack_and_poll_current():
    assert Watchdog.current() is None
    Watchdog.poll_current()  # no-op with an empty stack

    clock = FakeClock()
    outer = Watchdog(deadline_ms=1000.0, clock=clock).push()
    inner = Watchdog(deadline_ms=10.0, clock=clock).push()
    try:
        assert Watchdog.current() is inner
        clock.now = 0.5  # inner expired, outer not
        with pytest.raises(WatchdogTimeout):
            Watchdog.poll_current()
    finally:
        inner.pop()
        assert Watchdog.current() is outer
        Watchdog.poll_current()  # outer still has 500ms left
        outer.pop()
    assert Watchdog.current() is None


def test_pop_tolerates_misnesting():
    a = Watchdog().push()
    b = Watchdog().push()
    a.pop()  # out of order
    assert Watchdog.current() is b
    b.pop()
    assert Watchdog.current() is None


def test_program_timeout_is_not_a_watchdog_timeout():
    # Containment scopes catch WatchdogTimeout but must pass
    # ProgramTimeout through to the batch worker.
    assert not issubclass(ProgramTimeout, WatchdogTimeout)
