"""Unit tests for the degradation taxonomy and record serialization."""

import json

import pytest

from repro.core.transform import TransformError
from repro.profiling.interp import FuelExhausted
from repro.resilience.degradation import (
    ALL_KINDS,
    DegradationRecord,
    KIND_ANALYSIS_ERROR,
    KIND_PROFILE_BUDGET,
    KIND_RESOURCE_GUARD,
    KIND_SEARCH_BUDGET,
    KIND_TRANSFORM_ERROR,
    KIND_WATCHDOG_TIMEOUT,
    classify_exception,
)
from repro.resilience.faults import FaultInjected
from repro.resilience.watchdog import DepthExceeded, WatchdogTimeout


def test_taxonomy_is_closed_and_stable():
    assert ALL_KINDS == (
        "analysis_error",
        "search_budget",
        "profile_budget",
        "transform_error",
        "watchdog_timeout",
        "resource_guard",
    )


@pytest.mark.parametrize(
    "exc, kind",
    [
        (WatchdogTimeout("deadline"), KIND_WATCHDOG_TIMEOUT),
        (FuelExhausted("out of fuel"), KIND_PROFILE_BUDGET),
        (TransformError("loop refused"), KIND_TRANSFORM_ERROR),
        (DepthExceeded("too deep"), KIND_RESOURCE_GUARD),
        (RecursionError("max depth"), KIND_RESOURCE_GUARD),
        (MemoryError(), KIND_RESOURCE_GUARD),
        (ValueError("whatever"), KIND_ANALYSIS_ERROR),
        (KeyError("missing"), KIND_ANALYSIS_ERROR),
        (FaultInjected("chaos"), KIND_ANALYSIS_ERROR),
    ],
)
def test_classify_exception(exc, kind):
    assert classify_exception(exc) == kind
    assert kind in ALL_KINDS


def test_from_exception_captures_attribution():
    record = DegradationRecord.from_exception(
        "search",
        WatchdogTimeout("deadline exceeded"),
        loop="main:for_head",
        rung="small_budget",
    )
    assert record.phase == "search"
    assert record.kind == KIND_WATCHDOG_TIMEOUT
    assert record.error_type == "WatchdogTimeout"
    assert record.message == "deadline exceeded"
    assert record.loop == "main:for_head"
    assert record.rung == "small_budget"


def test_to_dict_is_deterministic_and_json_safe():
    record = DegradationRecord.from_exception(
        "depgraph", ValueError("boom"), loop="f:h"
    )
    first = record.to_dict()
    assert first == {
        "phase": "depgraph",
        "kind": KIND_ANALYSIS_ERROR,
        "loop": "f:h",
        "error_type": "ValueError",
        "message": "boom",
    }
    # Byte-stable across repeated serializations (manifests diff these).
    assert json.dumps(first, sort_keys=True) == json.dumps(
        record.to_dict(), sort_keys=True
    )


def test_to_dict_omits_unset_fields():
    record = DegradationRecord(
        phase="search", kind=KIND_SEARCH_BUDGET, message="budget"
    )
    assert record.to_dict() == {
        "phase": "search",
        "kind": KIND_SEARCH_BUDGET,
        "message": "budget",
    }


def test_str_rendering():
    record = DegradationRecord.from_exception(
        "transform", TransformError("nope"), loop="main:L", rung="full"
    )
    assert str(record) == (
        "transform/transform_error [main:L] (rung: full): nope"
    )
