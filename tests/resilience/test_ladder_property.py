"""Degradation-ladder property: chaos never changes program meaning.

For randomly generated programs with faults injected into each
analysis/transform phase, the compiled module must still execute and
produce exactly the sequential reference's result and final memory --
whatever the ladder decided (recover, degrade, or skip), the output
program stays differentially equivalent.
"""

import pytest

from repro.core.pipeline import Workload, compile_spt
from repro.frontend import compile_minic
from repro.profiling.interp import Machine
from repro.resilience.faults import FAULT_ENV_VAR, reset_fault_state
from repro.testkit.generator import generate_program
from repro.testkit.oracles import FUEL, _eager_config

SEEDS = [5, 12, 31]
FAULTS = [
    "profile:raise",
    "depgraph:raise",
    "search:raise",
    "transform:raise",
    "search:raise:1",  # bounded: the ladder recovers on a retry rung
    "depgraph:raise:1,search:raise:2",  # multi-phase chaos
]

#: (profiling workload, verification workload) -- deliberately
#: different so speculation trained on one input is checked on another.
TRAIN_N = 25
CHECK_N = 120


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("fault", FAULTS)
def test_chaos_compiled_module_is_differentially_equivalent(
    monkeypatch, seed, fault
):
    source = generate_program(seed).source()

    seq_module = compile_minic(source)
    seq_machine = Machine(seq_module, fuel=FUEL)
    seq_result = seq_machine.run("main", [CHECK_N])

    monkeypatch.setenv(FAULT_ENV_VAR, fault)
    reset_fault_state()
    spt_module = compile_minic(source)
    result = compile_spt(
        spt_module, _eager_config(), Workload(args=(TRAIN_N,))
    )
    monkeypatch.delenv(FAULT_ENV_VAR)

    # The chaos must have been contained, not raised (unbounded specs
    # always fire; bounded ones may be spent before every phase runs).
    if fault.endswith(":raise"):
        assert result.degradations

    spt_machine = Machine(spt_module, fuel=FUEL)
    spt_result = spt_machine.run("main", [CHECK_N])
    assert spt_result == seq_result
    assert spt_machine.memory == seq_machine.memory
    assert spt_machine.symbols == seq_machine.symbols
