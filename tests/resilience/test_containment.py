"""Unit tests for the phase firewall (``run_contained``)."""

import pytest

from repro.obs.telemetry import Telemetry
from repro.resilience.containment import PASSTHROUGH, run_contained
from repro.resilience.degradation import (
    KIND_ANALYSIS_ERROR,
    KIND_WATCHDOG_TIMEOUT,
)
from repro.resilience.faults import FAULT_ENV_VAR
from repro.resilience.watchdog import ProgramTimeout, Watchdog


def test_success_passes_result_through():
    result, record = run_contained("search", lambda wd: 42)
    assert result == 42
    assert record is None


def test_no_deadline_means_no_watchdog():
    seen = []
    run_contained("search", lambda wd: seen.append(wd))
    assert seen == [None]


def test_deadline_arms_and_publishes_watchdog():
    seen = []

    def phase(watchdog):
        seen.append(watchdog)
        assert Watchdog.current() is watchdog
        return "ok"

    result, record = run_contained("search", phase, deadline_ms=5_000.0)
    assert result == "ok"
    assert record is None
    assert isinstance(seen[0], Watchdog)
    assert Watchdog.current() is None  # popped on the way out


def test_exception_becomes_degradation_record():
    def phase(watchdog):
        raise ValueError("analysis exploded")

    result, record = run_contained(
        "depgraph", phase, loop="main:L", rung="full"
    )
    assert result is None
    assert record.phase == "depgraph"
    assert record.kind == KIND_ANALYSIS_ERROR
    assert record.loop == "main:L"
    assert record.rung == "full"
    assert "analysis exploded" in record.message


def test_watchdog_pops_even_on_containment():
    def phase(watchdog):
        raise RuntimeError("boom")

    run_contained("search", phase, deadline_ms=5_000.0)
    assert Watchdog.current() is None


def test_program_timeout_passes_through():
    assert ProgramTimeout in PASSTHROUGH

    def phase(watchdog):
        raise ProgramTimeout("whole-program budget")

    with pytest.raises(ProgramTimeout):
        run_contained("search", phase)
    assert Watchdog.current() is None


def test_expired_deadline_is_contained_as_watchdog_timeout():
    def phase(watchdog):
        while True:
            watchdog.check()

    result, record = run_contained("search", phase, deadline_ms=20.0)
    assert result is None
    assert record.kind == KIND_WATCHDOG_TIMEOUT


def test_telemetry_records_contained_faults():
    telemetry = Telemetry()

    def phase(watchdog):
        raise ValueError("boom")

    run_contained("search", phase, telemetry=telemetry)
    assert telemetry.counters["resilience.contained"] == 1
    assert (
        telemetry.counters[f"resilience.contained.{KIND_ANALYSIS_ERROR}"] == 1
    )
    events = [e for e in telemetry.events if e.name == "resilience.degradation"]
    assert len(events) == 1
    assert events[0].attrs["phase"] == "search"
    assert events[0].attrs["kind"] == KIND_ANALYSIS_ERROR


def test_chaos_spec_fires_inside_the_firewall(monkeypatch):
    # REPRO_FAULT faults are injected inside the try, so they are
    # contained exactly like organic failures.
    monkeypatch.setenv(FAULT_ENV_VAR, "search:raise")
    result, record = run_contained("search", lambda wd: "unreached")
    assert result is None
    assert record.error_type == "FaultInjected"
    result, record = run_contained("depgraph", lambda wd: "fine")
    assert result == "fine"
    assert record is None
