"""Shared fixtures for the resilience / chaos test suite."""

import pytest

from repro.resilience.faults import FAULT_ENV_VAR, HANG_ENV_VAR, reset_fault_state

#: A corpus program whose guard loop is selected under the best config
#: (so every firewalled phase -- profile, depgraph, search, svp,
#: transform -- actually runs on it).
PROGRAM = """
global int data[64];

int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 63];
        int y = (x * 11 + i) ^ (x >> 1);
        data[i & 63] = y & 127;
        s += y & 7;
    }
    return s;
}
"""


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Every test starts with no armed faults and zero fire counts."""
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    monkeypatch.delenv(HANG_ENV_VAR, raising=False)
    reset_fault_state()
    yield
    reset_fault_state()
