"""Unit tests for the ``$REPRO_FAULT`` chaos-injection hook."""

import time

import pytest

from repro.resilience.faults import (
    FAULT_ENV_VAR,
    HANG_ENV_VAR,
    FaultInjected,
    maybe_inject,
    parse_fault_specs,
    reset_fault_state,
)
from repro.resilience.watchdog import Watchdog, WatchdogTimeout


def test_parse_fault_specs_grammar():
    assert parse_fault_specs("search:raise") == [("search", "raise", None)]
    assert parse_fault_specs("search:raise:2, transform:hang") == [
        ("search", "raise", "2"),
        ("transform", "hang", None),
    ]
    assert parse_fault_specs("profile:slow:0.2") == [
        ("profile", "slow", "0.2")
    ]


@pytest.mark.parametrize(
    "raw",
    [
        "",
        "search",  # no mode
        "search:explode",  # unknown mode
        ":raise",  # empty phase
        "a:raise:b:c",  # too many fields
        ",,",
    ],
)
def test_malformed_specs_are_ignored(raw):
    # A typo in a chaos env var must never take the compiler down.
    assert parse_fault_specs(raw) == []


def test_disabled_injection_is_a_noop(monkeypatch):
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    maybe_inject("search")  # nothing armed, nothing raised


def test_raise_mode_unbounded(monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "search:raise")
    for _ in range(3):
        with pytest.raises(FaultInjected):
            maybe_inject("search")
    maybe_inject("transform")  # other phases unaffected


def test_raise_mode_bounded_fire_count(monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "search:raise:2")
    with pytest.raises(FaultInjected):
        maybe_inject("search")
    with pytest.raises(FaultInjected):
        maybe_inject("search")
    maybe_inject("search")  # bounded fault is spent after 2 fires


def test_reset_fault_state_rearms_bounded_faults(monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "search:raise:1")
    with pytest.raises(FaultInjected):
        maybe_inject("search")
    maybe_inject("search")
    reset_fault_state()
    with pytest.raises(FaultInjected):
        maybe_inject("search")


def test_slow_mode_sleeps(monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "search:slow:0.05")
    started = time.monotonic()
    maybe_inject("search")
    assert time.monotonic() - started >= 0.04


def test_hang_mode_is_cooperative(monkeypatch):
    # A hang under an active phase watchdog is broken by WatchdogTimeout
    # (which the enclosing firewall then contains).
    monkeypatch.setenv(FAULT_ENV_VAR, "search:hang")
    monkeypatch.setenv(HANG_ENV_VAR, "10")
    dog = Watchdog(deadline_ms=50.0).push()
    try:
        started = time.monotonic()
        with pytest.raises(WatchdogTimeout):
            maybe_inject("search")
        assert time.monotonic() - started < 5.0
    finally:
        dog.pop()


def test_hang_mode_gives_up_after_limit(monkeypatch):
    # With no watchdog active the hang wedges visibly but not forever.
    monkeypatch.setenv(FAULT_ENV_VAR, "search:hang")
    monkeypatch.setenv(HANG_ENV_VAR, "0.1")
    started = time.monotonic()
    maybe_inject("search")
    elapsed = time.monotonic() - started
    assert 0.08 <= elapsed < 5.0
