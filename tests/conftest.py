"""Repo-wide pytest configuration.

Adds ``--update-goldens``: golden/regression tests (tests/golden)
regenerate their expected snapshots instead of asserting against them.
Run it after an intentional compiler-behaviour change and commit the
refreshed files with the change that caused them.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate golden snapshots instead of comparing",
    )


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")
